"""Chapter 4 experiments: every table and figure of the core evaluation.

Each function regenerates one artifact (the rows/series the paper
reports) on the synthetic NAMOS/cow/volcano/fire traces.  Absolute CPU
numbers differ from the 2008 Java/PowerPC prototype; the comparisons the
paper draws (who wins, by what factor, which direction a sweep moves)
are what these reproductions target - see EXPERIMENTS.md.
"""

from __future__ import annotations

import random

from repro.core.tuples import Trace, src_statistics
from repro.experiments.configs import (
    FILTER_TYPE_NOTATIONS,
    TABLE_4_1_GROUPS,
    fig_4_19_groups,
)
from repro.experiments.harness import (
    STANDARD_VARIANTS,
    run_group,
    run_variant,
)
from repro.experiments.report import ExperimentRegistry, ExperimentReport
from repro.metrics.cpu import cpu_ms_per_tuple, mean_cpu_ms_per_batch
from repro.metrics.latency import mean_latency_ms
from repro.metrics.ratios import output_ratio
from repro.metrics.report import render_table
from repro.metrics.summary import BoxPlot, mean, median
from repro.sources.cow import cow_trace
from repro.sources.fire import fire_trace
from repro.sources.namos import namos_trace
from repro.sources.volcano import volcano_trace

__all__ = ["CHAPTER4"]

CHAPTER4 = ExperimentRegistry()

#: The five timely-cut time specifications of Figures 4.9-4.12:
#: "linearly decreasing the maximum time for closing a region from 125 ms
#: in RG+C(01) ... to a time 16-fold less in RG+C(05) (8 ms)".
CUT_SPECS_MS = {
    "RG+C(01)": 125.0,
    "RG+C(02)": 95.75,
    "RG+C(03)": 66.5,
    "RG+C(04)": 37.25,
    "RG+C(05)": 8.0,
}


def _traces(n_tuples: int, repeats: int, seed: int) -> list[Trace]:
    return [namos_trace(n=n_tuples, seed=seed + i) for i in range(repeats)]


# ---------------------------------------------------------------------------
# Tables 4.1 / 4.2
# ---------------------------------------------------------------------------
@CHAPTER4.register("table_4_1")
def table_4_1(n_tuples: int = 3000, repeats: int = 1, seed: int = 7) -> ExperimentReport:
    trace = namos_trace(n=n_tuples, seed=seed)
    rows = []
    for group_name, specs in TABLE_4_1_GROUPS.items():
        for spec in specs:
            attribute = spec.split("(")[1].split(",")[0]
            statistic = src_statistics(trace, attribute)
            rows.append([group_name, spec, f"{statistic:.4f}"])
    text = render_table(
        "Table 4.1: Specifications for groups of filters",
        ["group", "filter", "srcStatistics(attr)"],
        rows,
    )
    return ExperimentReport(
        "table_4_1",
        "Filter group specifications",
        text,
        data={"groups": TABLE_4_1_GROUPS},
        paper_claim="deltas lie in [1x, 3x] srcStatistics; slack ~50% of delta",
    )


@CHAPTER4.register("table_4_2")
def table_4_2(n_tuples: int = 0, repeats: int = 0, seed: int = 0) -> ExperimentReport:
    text = render_table(
        "Table 4.2: Filter type notations",
        ["abbreviation", "meaning"],
        [list(row) for row in FILTER_TYPE_NOTATIONS],
    )
    return ExperimentReport(
        "table_4_2",
        "Filter type notations",
        text,
        data={"notations": dict(FILTER_TYPE_NOTATIONS)},
    )


# ---------------------------------------------------------------------------
# Figure 4.2: O/I ratios for the three groups
# ---------------------------------------------------------------------------
@CHAPTER4.register("fig_4_2")
def fig_4_2(n_tuples: int = 3000, repeats: int = 1, seed: int = 7) -> ExperimentReport:
    trace = namos_trace(n=n_tuples, seed=seed)
    rows = []
    data: dict[str, dict[str, float]] = {}
    for group_name, specs in TABLE_4_1_GROUPS.items():
        run = run_group(group_name, specs, trace, STANDARD_VARIANTS)
        data[group_name] = {}
        for variant in STANDARD_VARIANTS:
            ratio = run.oi_ratio(variant)
            data[group_name][variant] = ratio
            rows.append([group_name, variant, ratio])
    text = render_table(
        "Figure 4.2: O/I ratios for three groups of group-aware filters",
        ["group", "algorithm", "O/I ratio"],
        rows,
    )
    return ExperimentReport(
        "fig_4_2",
        "O/I ratios",
        text,
        data=data,
        paper_claim=(
            "all group-aware variants consumed less than 80% of the bandwidth of "
            "self-interested filters; PS comparable to RG; cuts had little impact"
        ),
    )


# ---------------------------------------------------------------------------
# Figures 4.3-4.5 (CPU box plots) and 4.6-4.8 (latency box plots)
# ---------------------------------------------------------------------------
_BOX_VARIANTS = ("PS", "PS+C", "RG", "RG+C", "SI")


def _boxplot_experiment(
    group_name: str, metric: str, n_tuples: int, repeats: int, seed: int
) -> tuple[str, dict[str, BoxPlot]]:
    specs = TABLE_4_1_GROUPS[group_name]
    samples: dict[str, list[float]] = {variant: [] for variant in _BOX_VARIANTS}
    for trace in _traces(n_tuples, repeats, seed):
        for variant in _BOX_VARIANTS:
            result = run_variant(specs, trace, variant)
            if metric == "cpu":
                samples[variant].append(cpu_ms_per_tuple(result))
            else:
                samples[variant].append(mean_latency_ms(result))
    boxes = {variant: BoxPlot.of(values) for variant, values in samples.items()}
    unit = "CPU ms/tuple" if metric == "cpu" else "latency ms/tuple"
    rows = [
        [variant, box.minimum, box.q1, box.median, box.q3, box.maximum, box.mean]
        for variant, box in boxes.items()
    ]
    text = render_table(
        f"{group_name} {unit} over {repeats} runs (box plot summary)",
        ["algorithm", "min", "q1", "median", "q3", "max", "mean"],
        rows,
    )
    return text, boxes


def _make_box_fig(figure_id: str, group_name: str, metric: str, claim: str):
    @CHAPTER4.register(figure_id)
    def experiment(
        n_tuples: int = 3000, repeats: int = 10, seed: int = 7
    ) -> ExperimentReport:
        text, boxes = _boxplot_experiment(group_name, metric, n_tuples, repeats, seed)
        return ExperimentReport(
            figure_id,
            f"{group_name} {metric}",
            text,
            data={variant: box.row() for variant, box in boxes.items()},
            paper_claim=claim,
        )

    return experiment


_CPU_CLAIM = (
    "group-aware filters were more than 10x more expensive than self-interested, "
    "yet ~1 ms per tuple - fast enough for a 100-tuple/s stream"
)
_LATENCY_CLAIM = (
    "group-aware latency (~70 ms/tuple) far exceeds self-interested (~12 ms); "
    "the gap is the wait for a region to accumulate (~6 tuples at 10 ms)"
)
_make_box_fig("fig_4_3", "DC_Fluoro", "cpu", _CPU_CLAIM)
_make_box_fig("fig_4_4", "DC_Hybrid", "cpu", _CPU_CLAIM)
_make_box_fig("fig_4_5", "DC_Tmpr", "cpu", _CPU_CLAIM)
_make_box_fig("fig_4_6", "DC_Fluoro", "latency", _LATENCY_CLAIM)
_make_box_fig("fig_4_7", "DC_Hybrid", "latency", _LATENCY_CLAIM)
_make_box_fig("fig_4_8", "DC_Tmpr", "latency", _LATENCY_CLAIM)


# ---------------------------------------------------------------------------
# Figures 4.9-4.12: effectiveness of timely cuts (DC_Fluoro)
# ---------------------------------------------------------------------------
def _cut_sweep(n_tuples: int, repeats: int, seed: int):
    specs = TABLE_4_1_GROUPS["DC_Fluoro"]
    metrics: dict[str, dict[str, list[float]]] = {
        name: {"latency": [], "cpu": [], "pct_cut": [], "oi": []}
        for name in CUT_SPECS_MS
    }
    for trace in _traces(n_tuples, repeats, seed):
        for name, constraint_ms in CUT_SPECS_MS.items():
            result = run_variant(specs, trace, "RG+C", constraint_ms=constraint_ms)
            metrics[name]["latency"].append(mean_latency_ms(result))
            metrics[name]["cpu"].append(cpu_ms_per_tuple(result))
            metrics[name]["pct_cut"].append(result.percent_regions_cut)
            metrics[name]["oi"].append(result.oi_ratio)
    return metrics


def _make_cut_fig(figure_id: str, metric: str, unit: str, claim: str):
    @CHAPTER4.register(figure_id)
    def experiment(
        n_tuples: int = 3000, repeats: int = 5, seed: int = 7
    ) -> ExperimentReport:
        metrics = _cut_sweep(n_tuples, repeats, seed)
        rows = [
            [name, CUT_SPECS_MS[name], mean(values[metric])]
            for name, values in metrics.items()
        ]
        text = render_table(
            f"DC_Fluoro with timely cuts: {unit}",
            ["algorithm(spec #)", "max region time (ms)", unit],
            rows,
        )
        data = {name: mean(values[metric]) for name, values in metrics.items()}
        return ExperimentReport(figure_id, unit, text, data=data, paper_claim=claim)

    return experiment


_make_cut_fig(
    "fig_4_9",
    "latency",
    "latency ms/tuple",
    "tightening the cut from 125 ms to 8 ms drops latency from ~70 to ~20 ms/tuple",
)
_make_cut_fig(
    "fig_4_10",
    "cpu",
    "CPU ms/tuple",
    "enforcing cuts costs under 0.5 ms/tuple extra",
)
_make_cut_fig(
    "fig_4_11",
    "pct_cut",
    "% regions cut",
    "percentage of regions cut increases consistently as the budget shrinks",
)
_make_cut_fig(
    "fig_4_12",
    "oi",
    "O/I ratio",
    "cuts affect the O/I ratio only slightly",
)


# ---------------------------------------------------------------------------
# Figures 4.13-4.14: output strategies (DC_Fluoro)
# ---------------------------------------------------------------------------
_STRATEGY_VARIANTS = ("PS", "PS(B)-400", "PS(Pcs)", "SI")


def _strategy_sweep(n_tuples: int, repeats: int, seed: int):
    specs = TABLE_4_1_GROUPS["DC_Fluoro"]
    samples: dict[str, dict[str, list[float]]] = {
        name: {"latency": [], "cpu": []} for name in _STRATEGY_VARIANTS
    }
    for trace in _traces(n_tuples, repeats, seed):
        for name in _STRATEGY_VARIANTS:
            result = run_variant(specs, trace, name)
            samples[name]["latency"].append(mean_latency_ms(result))
            samples[name]["cpu"].append(cpu_ms_per_tuple(result))
    return samples


def _make_strategy_fig(figure_id: str, metric: str, unit: str, claim: str):
    @CHAPTER4.register(figure_id)
    def experiment(
        n_tuples: int = 3000, repeats: int = 5, seed: int = 7
    ) -> ExperimentReport:
        samples = _strategy_sweep(n_tuples, repeats, seed)
        rows = [[name, mean(values[metric])] for name, values in samples.items()]
        text = render_table(
            f"DC_Fluoro output strategies: {unit}", ["algorithm", unit], rows
        )
        data = {name: mean(values[metric]) for name, values in samples.items()}
        return ExperimentReport(figure_id, unit, text, data=data, paper_claim=claim)

    return experiment


_make_strategy_fig(
    "fig_4_13",
    "latency",
    "latency ms/tuple",
    "batched output far above region size backlogs dramatically; "
    "per-candidate-set output cuts latency from ~70 to ~50 ms/tuple",
)
_make_strategy_fig(
    "fig_4_14",
    "cpu",
    "CPU ms/tuple",
    "batched output skips region-closure checking, saving ~1 ms of 1.3 ms CPU",
)


# ---------------------------------------------------------------------------
# Figure 4.15: slack's effect (DC_Tmpr deltas, slack swept)
# ---------------------------------------------------------------------------
@CHAPTER4.register("fig_4_15")
def fig_4_15(n_tuples: int = 3000, repeats: int = 3, seed: int = 7) -> ExperimentReport:
    deltas = [0.0620, 0.0480, 0.0310]
    fractions = [0.03, 0.10, 0.20, 0.30, 0.40, 0.50]
    points = []
    data = {}
    for fraction in fractions:
        specs = [f"DC1(tmpr4, {d:.6g}, {d * fraction:.6g})" for d in deltas]
        ratios = []
        for trace in _traces(n_tuples, repeats, seed):
            ga = run_variant(specs, trace, "RG")
            si = run_variant(specs, trace, "SI")
            ratios.append(output_ratio(ga, si))
        points.append([f"{fraction:.0%}", mean(ratios)])
        data[fraction] = mean(ratios)
    text = render_table(
        "Figure 4.15: slack's effect on DC-filter output ratio",
        ["slack (% of delta)", "output ratio (GA/SI)"],
        points,
    )
    return ExperimentReport(
        "fig_4_15",
        "Slack sweep",
        text,
        data=data,
        paper_claim=(
            "output ratio falls from ~1.0 at 3% slack to below 0.75 at 50%: "
            "larger slack means larger candidate sets and more overlap"
        ),
    )


# ---------------------------------------------------------------------------
# Figure 4.16: delta's effect (third filter's delta swept)
# ---------------------------------------------------------------------------
@CHAPTER4.register("fig_4_16")
def fig_4_16(n_tuples: int = 3000, repeats: int = 3, seed: int = 7) -> ExperimentReport:
    slack = 0.0155
    fixed = [0.0620, 0.0930]
    sweep = [0.0310 + i * 0.0052 for i in range(13)]  # 1x .. ~2x srcStatistics
    points = []
    data = {}
    traces = _traces(n_tuples, repeats, seed)
    for delta in sweep:
        specs = [f"DC1(tmpr4, {d:.6g}, {slack:.6g})" for d in fixed + [delta]]
        ratios = []
        for trace in traces:
            ga = run_variant(specs, trace, "RG")
            si = run_variant(specs, trace, "SI")
            ratios.append(output_ratio(ga, si))
        points.append([delta, mean(ratios), median(ratios)])
        data[round(delta, 4)] = mean(ratios)
    text = render_table(
        "Figure 4.16: delta's effect on DC-filter output ratio "
        "(two filters fixed at 0.0620/0.0930, slack 0.0155)",
        ["third filter delta", "avg output ratio", "median output ratio"],
        points,
    )
    return ExperimentReport(
        "fig_4_16",
        "Delta sweep",
        text,
        data=data,
        paper_claim=(
            "the curve is mostly level with jumps where the swept filter's "
            "candidate sets move into/out of the others' coverage"
        ),
    )


# ---------------------------------------------------------------------------
# Figures 4.17-4.18: group size
# ---------------------------------------------------------------------------
_GROUP_SIZES = (3, 4, 5, 6, 7, 8, 9, 11, 13, 15, 17, 19)


def _random_group(rng: random.Random, size: int, statistic: float = 0.0310) -> list[str]:
    """Random DC1 group per section 4.7.3: deltas in [1x, 6x] srcStatistics,
    slack fixed at 0.015."""
    specs = []
    for _ in range(size):
        delta = rng.uniform(1.0, 6.0) * statistic
        specs.append(f"DC1(tmpr4, {delta:.6g}, 0.015)")
    return specs


@CHAPTER4.register("fig_4_17")
def fig_4_17(n_tuples: int = 3000, repeats: int = 5, seed: int = 7) -> ExperimentReport:
    trace = namos_trace(n=n_tuples, seed=seed)
    rng = random.Random(seed)
    rows = []
    data = {}
    for size in _GROUP_SIZES:
        ratios = []
        for _ in range(repeats):
            specs = _random_group(rng, size)
            ga = run_variant(specs, trace, "RG")
            si = run_variant(specs, trace, "SI")
            ratios.append(output_ratio(ga, si))
        box = BoxPlot.of(ratios)
        rows.append([size, box.minimum, box.median, box.maximum, box.mean])
        data[size] = box.median
    text = render_table(
        "Figure 4.17: group size's effect on output ratio "
        f"({repeats} random DC1 groups per size)",
        ["group size", "min", "median", "max", "mean"],
        rows,
    )
    return ExperimentReport(
        "fig_4_17",
        "Group size vs output ratio",
        text,
        data=data,
        paper_claim=(
            "a downward trend in the median output ratio: adding filters adds "
            "less new output than it adds candidate-set overlap"
        ),
    )


@CHAPTER4.register("fig_4_18")
def fig_4_18(n_tuples: int = 3000, repeats: int = 1, seed: int = 7) -> ExperimentReport:
    trace = namos_trace(n=n_tuples, seed=seed)
    rng = random.Random(seed)
    rows = []
    data = {}
    for size in _GROUP_SIZES:
        ga_costs, si_costs = [], []
        for _ in range(max(1, repeats)):
            specs = _random_group(rng, size)
            ga = run_variant(specs, trace, "RG")
            si = run_variant(specs, trace, "SI")
            ga_costs.append(mean_cpu_ms_per_batch(ga))
            si_costs.append(mean_cpu_ms_per_batch(si))
        rows.append([size, mean(ga_costs), mean(si_costs)])
        data[size] = {"group_aware": mean(ga_costs), "self_interested": mean(si_costs)}
    text = render_table(
        "Figure 4.18: group size's effect on CPU cost per 100-tuple batch (ms)",
        ["group size", "group-aware", "self-interested"],
        rows,
    )
    return ExperimentReport(
        "fig_4_18",
        "Group size vs CPU",
        text,
        data=data,
        paper_claim=(
            "roughly linear growth with group size; group-aware costs about "
            "double self-interested due to group coordination"
        ),
    )


# ---------------------------------------------------------------------------
# Figures 4.19-4.24: multiple data sources
# ---------------------------------------------------------------------------
def _source_suite(n_tuples: int, seed: int):
    cow = cow_trace(n=n_tuples, seed=seed + 100)
    volcano = volcano_trace(n=n_tuples, seed=seed + 200)
    fire = fire_trace(n=n_tuples, seed=seed + 300)
    groups = fig_4_19_groups(cow, volcano, fire, seed=seed)
    traces = {"DC_cow": cow, "DC_volcano": volcano, "DC_fireExp": fire}
    return groups, traces


@CHAPTER4.register("fig_4_19")
def fig_4_19(n_tuples: int = 3000, repeats: int = 1, seed: int = 7) -> ExperimentReport:
    groups, _ = _source_suite(n_tuples, seed)
    rows = [
        [group_name, spec]
        for group_name, specs in groups.items()
        for spec in specs
    ]
    text = render_table(
        "Figure 4.19: filter specifications for multiple data sources "
        "(recipe: deltas 1x/2x/rand(1,3)x srcStatistics, slack 50%)",
        ["group", "filter"],
        rows,
    )
    return ExperimentReport("fig_4_19", "Source filter specs", text, data=groups)


@CHAPTER4.register("fig_4_20")
def fig_4_20(n_tuples: int = 3000, repeats: int = 1, seed: int = 7) -> ExperimentReport:
    groups, traces = _source_suite(n_tuples, seed)
    rows = []
    data: dict[str, dict[str, float]] = {}
    for group_name, specs in groups.items():
        run = run_group(group_name, specs, traces[group_name], STANDARD_VARIANTS)
        data[group_name] = {}
        for variant in STANDARD_VARIANTS:
            ratio = run.oi_ratio(variant)
            rows.append([group_name, variant, ratio])
            data[group_name][variant] = ratio
    text = render_table(
        "Figure 4.20: O/I ratios of filtering with different data sources",
        ["data source", "algorithm", "O/I ratio"],
        rows,
    )
    return ExperimentReport(
        "fig_4_20",
        "Per-source O/I",
        text,
        data=data,
        paper_claim=(
            "group-aware filtering reduced bandwidth to 83%/74%/60% of "
            "self-interested for cow / seismic / fire HRR(Q) respectively - "
            "smoother update patterns give bigger savings"
        ),
    )


def _make_trace_fig(figure_id: str, source_name: str, make_trace, attribute: str):
    @CHAPTER4.register(figure_id)
    def experiment(
        n_tuples: int = 3000, repeats: int = 1, seed: int = 7
    ) -> ExperimentReport:
        offsets = {"cow": 100, "volcano": 200, "fire": 300}
        trace = make_trace(n=n_tuples, seed=seed + offsets[source_name])
        column = trace.column(attribute)
        step = max(1, len(column) // 24)
        points = [[i, column[i]] for i in range(0, len(column), step)]
        stats = {
            "min": min(column),
            "max": max(column),
            "srcStatistics": src_statistics(trace, attribute),
        }
        text = render_table(
            f"{source_name} trace shape ({attribute}), downsampled",
            ["index", attribute],
            points,
        ) + "\n" + render_table(
            f"{source_name} statistics",
            ["metric", "value"],
            [[k, v] for k, v in stats.items()],
        )
        return ExperimentReport(figure_id, f"{source_name} trace", text, data=stats)

    return experiment


_make_trace_fig("fig_4_21", "cow", cow_trace, "E-orient")
_make_trace_fig("fig_4_22", "volcano", volcano_trace, "seis")
_make_trace_fig("fig_4_23", "fire", fire_trace, "HRR")


@CHAPTER4.register("fig_4_24")
def fig_4_24(n_tuples: int = 3000, repeats: int = 1, seed: int = 7) -> ExperimentReport:
    groups, traces = _source_suite(n_tuples, seed)
    rows = []
    data: dict[str, dict[str, float]] = {}
    for group_name, specs in groups.items():
        run = run_group(group_name, specs, traces[group_name], STANDARD_VARIANTS)
        data[group_name] = {}
        for variant in STANDARD_VARIANTS:
            cost = cpu_ms_per_tuple(run.results[variant])
            rows.append([group_name, variant, cost])
            data[group_name][variant] = cost
    text = render_table(
        "Figure 4.24: CPU cost of filtering with different data sources (ms/tuple)",
        ["data source", "algorithm", "CPU ms/tuple"],
        rows,
    )
    return ExperimentReport(
        "fig_4_24",
        "Per-source CPU",
        text,
        data=data,
        paper_claim=(
            "all group-aware algorithms raise CPU cost, but by less than 50% "
            "added cost for each data source"
        ),
    )
