"""Filter-group configurations for every evaluation experiment.

Tables 4.1 and 5.2 of the paper parameterize filters from the measured
*srcStatistics* of the source: "we computed the average changes ... of
two consecutive tuples in the source time series and then randomly
picked delta values between the range of srcStatistics and
3*srcStatistics ... Then we set slack values to be about 50% of the
corresponding delta values" (section 4.3).

Where the synthetic NAMOS trace matches the statistics the paper's
literal numbers imply (thermo/fluoro channels - see
``repro.sources.namos``), the table values are used verbatim; for the
other sources (Figure 4.19) and the trend filters the same recipe is
applied to the measured statistics of our traces, which EXPERIMENTS.md
documents as a substitution.
"""

from __future__ import annotations

import random
from typing import Sequence

from repro.core.tuples import Trace, src_statistics
from repro.filters.trend import _TrendState

__all__ = [
    "TABLE_4_1_GROUPS",
    "FILTER_TYPE_NOTATIONS",
    "dc_specs_from_statistics",
    "fig_4_19_groups",
    "table_5_2_groups",
    "trend_statistic",
]

#: Table 4.1 - "Specifications for groups of filters" (verbatim).
TABLE_4_1_GROUPS: dict[str, list[str]] = {
    "DC_Fluoro": [
        "DC(fluoro, 0.0301, 0.0150)",
        "DC(fluoro, 0.0702, 0.0301)",
        "DC(fluoro, 0.0500, 0.0250)",
    ],
    "DC_Hybrid": [
        "DC(fluoro, 0.0702, 0.0100)",
        "DC(tmpr2, 0.0460, 0.0153)",
        "DC(tmpr4, 0.0310, 0.0103)",
    ],
    "DC_Tmpr": [
        "DC(tmpr4, 0.0620, 0.0310)",
        "DC(tmpr4, 0.0480, 0.0240)",
        "DC(tmpr4, 0.0310, 0.0155)",
    ],
}

#: Table 4.2 - "Filter type notations" (verbatim legend).
FILTER_TYPE_NOTATIONS: list[tuple[str, str]] = [
    ("SI", "Self-Interested filter"),
    ("RG", "Region-based Greedy filter"),
    ("PS", "Per-candidate-Set greedy filter"),
    ("+C", "with timely Cuts"),
    ("+C(x)", "with timely Cuts, x is the name of a time spec."),
    ("(B)", "with Batched output strategy"),
    ("(B)-x", "with Batched output strategy, x is input tuple window"),
    ("(Pcs)", "with Per-candidate-set output strategy"),
]


def dc_specs_from_statistics(
    trace: Trace,
    attribute: str,
    multipliers: Sequence[float],
    slack_fraction: float = 0.5,
    kind: str = "DC1",
) -> list[str]:
    """Apply the section-4.3 recipe: delta = multiplier * srcStatistics,
    slack = slack_fraction * delta."""
    statistic = src_statistics(trace, attribute)
    specs = []
    for multiplier in multipliers:
        # Format delta first and derive slack from the formatted value, so
        # the printed spec never violates Axiom 1 through rounding.
        delta = float(f"{multiplier * statistic:.6g}")
        slack = float(f"{slack_fraction * delta:.6g}")
        slack = min(slack, delta / 2.0)
        specs.append(f"{kind}({attribute}, {delta:.10g}, {slack:.10g})")
    return specs


def trend_statistic(trace: Trace, attribute: str) -> float:
    """srcStatistics of the derived trend series (for DC2 recipes)."""
    state = _TrendState(attribute)
    trends = [state.derive(item) for item in trace]
    total = sum(abs(b - a) for a, b in zip(trends, trends[1:]))
    if len(trends) < 2:
        raise ValueError("trend statistic needs at least two tuples")
    return total / (len(trends) - 1)


def fig_4_19_groups(
    cow: Trace, volcano: Trace, fire: Trace, seed: int = 5
) -> dict[str, list[str]]:
    """Figure 4.19 - filter specifications for the three extra sources.

    The paper's recipe is applied against each synthetic trace's own
    measured statistics: deltas at 1x / 2x / uniform(1, 3)x
    srcStatistics, slack at 50%.
    """
    rng = random.Random(seed)
    groups = {}
    for group_name, trace, attribute in (
        ("DC_cow", cow, "E-orient"),
        ("DC_volcano", volcano, "seis"),
        ("DC_fireExp", fire, "HRR"),
    ):
        multipliers = [1.0, 2.0, rng.uniform(1.0, 3.0)]
        groups[group_name] = dc_specs_from_statistics(trace, attribute, multipliers)
    return groups


def table_5_2_groups(trace: Trace, seed: int = 9) -> dict[int, list[str]]:
    """Table 5.2 - ten groups of (partly heterogeneous) filters.

    Groups 2-5, 7, 8 and 10 use the paper's literal values (our NAMOS
    statistics match); fluoro-based DC1/DC2 parameters are derived with
    the same multipliers against the synthetic trace's statistics, since
    the dissertation's fluoro scale differs between chapters.
    """
    rng = random.Random(seed)
    fluoro_multiplier = rng.uniform(1.0, 2.0)
    fluoro = dc_specs_from_statistics(
        trace, "fluoro", [1.0, 2.33, fluoro_multiplier]
    )
    trend_stat = trend_statistic(trace, "fluoro")

    def dc2_spec(multiplier: float) -> str:
        delta = float(f"{multiplier * trend_stat:.6g}")
        slack = min(float(f"{0.5 * delta:.6g}"), delta / 2.0)
        return f"DC2(fluoro, {delta:.10g}, {slack:.10g})"

    dc2 = [dc2_spec(2.0), dc2_spec(1.0), dc2_spec(1.3)]
    dc2_small = dc2_spec(0.52)
    return {
        1: fluoro,
        2: [
            "DC1(tmpr2, 0.0230, 0.0115)",
            "DC1(tmpr2, 0.0460, 0.0230)",
            "DC1(tmpr2, 0.0315, 0.0107)",
        ],
        3: [
            "DC1(tmpr4, 0.0310, 0.0155)",
            "DC1(tmpr4, 0.0620, 0.0310)",
            "DC1(tmpr4, 0.0480, 0.0240)",
        ],
        4: [
            "DC1(tmpr6, 0.0250, 0.0125)",
            "DC1(tmpr6, 0.0500, 0.0250)",
            "DC1(tmpr6, 0.0345, 0.0172)",
        ],
        5: [
            "DC3(tmpr2, tmpr4, tmpr6, 0.0300, 0.0150)",
            "DC3(tmpr2, tmpr4, tmpr6, 0.0600, 0.0300)",
            "DC3(tmpr2, tmpr4, tmpr6, 0.0452, 0.0226)",
        ],
        6: dc2,
        7: [
            "SS(tmpr4, 1000, 0.1500, 50, 20)",
            "SS(tmpr4, 1000, 0.3000, 50, 20)",
            "SS(tmpr4, 1000, 0.2300, 50, 20)",
        ],
        8: [
            "DC1(tmpr4, 0.0300, 0.0150)",
            "DC3(tmpr2, tmpr4, tmpr6, 0.0300, 0.0150)",
            "DC1(tmpr5, 0.0300, 0.0150)",
        ],
        9: [
            "DC1(tmpr4, 0.0300, 0.0150)",
            "DC3(tmpr2, tmpr4, tmpr6, 0.0300, 0.0150)",
            dc2_small,
        ],
        10: [
            "DC1(tmpr4, 0.0300, 0.0150)",
            "DC3(tmpr2, tmpr4, tmpr6, 0.0300, 0.0150)",
            "SS(tmpr4, 1000, 0.1000, 90, 50)",
        ],
    }
