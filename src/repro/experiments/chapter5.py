"""Chapter 5 experiments: the extensible framework evaluation.

Covers Table 5.1 (filter taxonomy), Table 5.2 (ten heterogeneous
groups), Figure 5.2 (per-batch output ratios), Table 5.3 / Figure 5.3
(CPU cost and overhead ratios), and the two application scenarios of
section 5.5 (chlorine emergency response, multi-modal sensing).
"""

from __future__ import annotations

from repro.experiments.harness import run_variant
from repro.experiments.report import ExperimentRegistry, ExperimentReport
from repro.metrics.cpu import mean_cpu_ms_per_batch
from repro.metrics.ratios import batch_output_ratios
from repro.metrics.report import render_table
from repro.metrics.summary import mean, median
from repro.net.overlay import LinkModel, OverlayNetwork
from repro.net.pubsub import StreamingSystem
from repro.sources.chlorine import chlorine_trace
from repro.sources.cow import cow_trace
from repro.sources.namos import namos_trace

__all__ = ["CHAPTER5"]

CHAPTER5 = ExperimentRegistry()

#: Table 5.1 - "Types of group-aware filters for evaluation" (verbatim).
FILTER_TYPES = [
    (
        "DC1(attrib, delta, slack)",
        "change of attrib between delta-slack and delta+slack",
        "choose any 1 tuple",
    ),
    (
        "DC2(attrib, delta, slack)",
        "change of trend(attrib) between delta-slack and delta+slack",
        "choose any 1 tuple",
    ),
    (
        "DC3(attrib1, attrib2, attrib3, delta, slack)",
        "change of average(attribs) between delta-slack and delta+slack",
        "choose any 1 tuple",
    ),
    (
        "SS(attrib, timeInterval, threshold, highSmplRt, lowSmplRt)",
        "change of timeStamp within timeInterval",
        "choose n% of tuples; n depends on sampleRange(attrib) vs threshold",
    ),
]


def _dc1_spec(attribute: str, delta: float, slack_fraction: float = 0.5) -> str:
    """Format a DC1 spec whose printed slack never exceeds delta/2."""
    rounded_delta = float(f"{delta:.6g}")
    slack = min(float(f"{slack_fraction * rounded_delta:.6g}"), rounded_delta / 2.0)
    return f"DC1({attribute}, {rounded_delta:.10g}, {slack:.10g})"


def _groups(n_tuples: int, seed: int):
    from repro.experiments.configs import table_5_2_groups

    trace = namos_trace(n=n_tuples, seed=seed)
    return trace, table_5_2_groups(trace, seed=seed)


@CHAPTER5.register("table_5_1")
def table_5_1(n_tuples: int = 0, repeats: int = 0, seed: int = 0) -> ExperimentReport:
    text = render_table(
        "Table 5.1: Types of group-aware filters for evaluation",
        ["filter type", "select candidates based on", "decide output"],
        [list(row) for row in FILTER_TYPES],
    )
    return ExperimentReport(
        "table_5_1", "Filter types", text, data={"types": [row[0] for row in FILTER_TYPES]}
    )


@CHAPTER5.register("table_5_2")
def table_5_2(n_tuples: int = 3000, repeats: int = 1, seed: int = 9) -> ExperimentReport:
    _, groups = _groups(n_tuples, seed)
    rows = [
        [group_id, index + 1, spec]
        for group_id, specs in groups.items()
        for index, spec in enumerate(specs)
    ]
    text = render_table(
        "Table 5.2: Specifications for ten groups of filters",
        ["group", "filter #", "specification"],
        rows,
    )
    return ExperimentReport("table_5_2", "Ten groups", text, data={"groups": groups})


# ---------------------------------------------------------------------------
# Figure 5.2 / Table 5.3 / Figure 5.3: the ten-group sweep
# ---------------------------------------------------------------------------
def _ten_group_sweep(n_tuples: int, seed: int):
    trace, groups = _groups(n_tuples, seed)
    outcomes = {}
    for group_id, specs in groups.items():
        ga = run_variant(specs, trace, "RG")
        si = run_variant(specs, trace, "SI")
        ratios = batch_output_ratios(ga, si, batch_size=100)
        outcomes[group_id] = {
            "avg_output_ratio": ratios.average,
            "median_output_ratio": ratios.median,
            "ga_cpu_ms_per_batch": mean_cpu_ms_per_batch(ga),
            "si_cpu_ms_per_batch": mean_cpu_ms_per_batch(si),
        }
    return outcomes


@CHAPTER5.register("fig_5_2")
def fig_5_2(n_tuples: int = 3000, repeats: int = 1, seed: int = 9) -> ExperimentReport:
    outcomes = _ten_group_sweep(n_tuples, seed)
    rows = [
        [group_id, data["avg_output_ratio"], data["median_output_ratio"]]
        for group_id, data in outcomes.items()
    ]
    below_80 = sum(1 for data in outcomes.values() if data["avg_output_ratio"] < 0.8)
    text = render_table(
        "Figure 5.2: benefit of group-aware filtering "
        "(output ratio per 100-tuple batch; smaller is better)",
        ["group", "average", "median"],
        rows,
    ) + f"\ngroups with average output ratio < 0.8: {below_80}/10"
    return ExperimentReport(
        "fig_5_2",
        "Ten-group output ratios",
        text,
        data={str(k): v["avg_output_ratio"] for k, v in outcomes.items()},
        paper_claim=(
            "for eight of the ten groups the average output ratio was below 80% "
            "of the self-interested bandwidth demand"
        ),
    )


@CHAPTER5.register("table_5_3")
def table_5_3(n_tuples: int = 3000, repeats: int = 1, seed: int = 9) -> ExperimentReport:
    outcomes = _ten_group_sweep(n_tuples, seed)
    rows = [
        [group_id, data["ga_cpu_ms_per_batch"], data["si_cpu_ms_per_batch"]]
        for group_id, data in outcomes.items()
    ]
    text = render_table(
        "Table 5.3: Average CPU cost per batch of 100 tuples (ms)",
        ["group", "group-aware", "self-interested"],
        rows,
    )
    return ExperimentReport(
        "table_5_3",
        "Ten-group CPU cost",
        text,
        data={
            str(k): (v["ga_cpu_ms_per_batch"], v["si_cpu_ms_per_batch"])
            for k, v in outcomes.items()
        },
        paper_claim=(
            "simple groups cost tens of ms per 100-tuple batch, complex DC2/DC3 "
            "groups cost more for both sides; per-tuple cost stays below the "
            "10 ms arrival interval, so no congestion"
        ),
    )


@CHAPTER5.register("fig_5_3")
def fig_5_3(n_tuples: int = 3000, repeats: int = 1, seed: int = 9) -> ExperimentReport:
    outcomes = _ten_group_sweep(n_tuples, seed)
    ratios = {
        group_id: data["ga_cpu_ms_per_batch"] / data["si_cpu_ms_per_batch"]
        for group_id, data in outcomes.items()
    }
    rows = [[group_id, ratio] for group_id, ratio in ratios.items()]
    text = render_table(
        "Figure 5.3: CPU overhead ratios (group-aware / self-interested)",
        ["group", "overhead ratio"],
        rows,
    ) + f"\nmean: {mean(list(ratios.values())):.3f}  median: {median(list(ratios.values())):.3f}"
    return ExperimentReport(
        "fig_5_3",
        "CPU overhead ratios",
        text,
        data={str(k): v for k, v in ratios.items()},
        paper_claim="group coordination can more than double CPU cost for some groups",
    )


# ---------------------------------------------------------------------------
# Section 5.5 scenarios
# ---------------------------------------------------------------------------
@CHAPTER5.register("fig_5_4_scenario")
def fig_5_4_scenario(
    n_tuples: int = 2000, repeats: int = 1, seed: int = 23
) -> ExperimentReport:
    """Chlorine train-derailment monitoring (section 5.5.1, Figure 5.4).

    Three command-and-control applications (fire prediction, responder
    safety, situation assessment) subscribe to a chlorine-concentration
    source over a mesh overlay, each with its own granularity.
    """
    trace = chlorine_trace(n=n_tuples, seed=seed)
    # Each application states its granularity in absolute concentration
    # units (how many ppm the reading must move before it needs an
    # update), as the drill's command-and-control applications did.
    peak = max(trace.column("cl_near"))
    app_specs = {
        "fire-prediction": _dc1_spec("cl_near", 0.05 * peak),
        "responder-safety": _dc1_spec("cl_near", 0.08 * peak),
        "situation-assessment": _dc1_spec("cl_near", 0.12 * peak),
    }

    def build_system() -> StreamingSystem:
        overlay = OverlayNetwork(
            [f"truck{i}" for i in range(7)], LinkModel(bandwidth_mbps=1.0)
        )
        system = StreamingSystem(overlay)
        system.add_source("chlorine", "truck0")
        for index, (app, spec) in enumerate(app_specs.items()):
            system.subscribe(app, f"truck{index + 1}", "chlorine", spec)
        return system

    ga = build_system().disseminate("chlorine", trace, algorithm="per_candidate_set")
    si = build_system().disseminate("chlorine", trace, algorithm="self_interested")
    saving = 1.0 - ga.total_link_bytes / si.total_link_bytes
    rows = [
        ["group-aware (PS)", ga.engine_result.output_count, ga.total_link_bytes],
        ["self-interested", si.engine_result.output_count, si.total_link_bytes],
    ]
    text = render_table(
        "Chlorine monitoring: bandwidth of group-aware vs self-interested filtering",
        ["dissemination", "distinct tuples", "link bytes"],
        rows,
    ) + f"\nadditional bandwidth saving over SI: {saving:.1%}"
    return ExperimentReport(
        "fig_5_4_scenario",
        "Chlorine scenario",
        text,
        data={
            "saving": saving,
            "ga_bytes": ga.total_link_bytes,
            "si_bytes": si.total_link_bytes,
        },
        paper_claim=(
            "in the Baton Rouge drill, group-aware filtering saved a further "
            "~15% bandwidth over self-interested filters"
        ),
    )


@CHAPTER5.register("fig_5_5_scenario")
def fig_5_5_scenario(
    n_tuples: int = 2000, repeats: int = 1, seed: int = 11
) -> ExperimentReport:
    """Multi-modal sensing (section 5.5.2, Figure 5.5).

    Low-cost motion sensors index a co-located high-cost imager: each
    selected sensor tuple triggers transmission of the temporally nearest
    image.  Smaller filter output means fewer images on the network.
    """
    trace = cow_trace(n=n_tuples, seed=seed)  # motion-like bursty source
    from repro.core.tuples import src_statistics

    statistic = src_statistics(trace, "E-orient")
    specs = [_dc1_spec("E-orient", m * statistic) for m in (2.0, 3.0, 4.0)]
    image_period_ms = 100.0  # the imager captures 10 frames/s
    image_bytes = 4096
    tuple_bytes = 64

    def image_count(result) -> int:
        frames = {
            int(e.item.timestamp // image_period_ms)
            for e in result.emissions
        }
        return len(frames)

    ga = run_variant(specs, trace, "RG")
    si = run_variant(specs, trace, "SI")
    ga_images, si_images = image_count(ga), image_count(si)
    ga_bytes = ga.output_count * tuple_bytes + ga_images * image_bytes
    si_bytes = si.output_count * tuple_bytes + si_images * image_bytes
    rows = [
        ["group-aware (RG)", ga.output_count, ga_images, ga_bytes],
        ["self-interested", si.output_count, si_images, si_bytes],
    ]
    text = render_table(
        "Multi-modal sensing: sensor index size and images transmitted",
        ["filtering", "index tuples", "images sent", "total bytes"],
        rows,
    )
    return ExperimentReport(
        "fig_5_5_scenario",
        "Multi-modal sensing scenario",
        text,
        data={
            "ga_images": ga_images,
            "si_images": si_images,
            "ga_bytes": ga_bytes,
            "si_bytes": si_bytes,
        },
        paper_claim=(
            "the smaller the filters' output, the fewer images must be "
            "transported to remote applications"
        ),
    )
