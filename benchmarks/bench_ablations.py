"""Ablation benchmarks for the design choices DESIGN.md calls out.

Each benchmark isolates one design decision of the paper and measures
the alternative:

* greedy vs simulated-annealing vs exact hitting-set (section 2.4.4's
  "we opt out of" evolutionary algorithms for timeliness);
* region-based segmentation vs whole-stream batch solving (Theorem 2:
  segmentation must not cost bandwidth; it buys bounded latency);
* the freshness tie-break vs an oldest-first tie-break (section 2.3.3);
* the run-time predictor's overestimation margin (section 3.3).
"""

import random

from repro.core.annealing import anneal_hitting_set
from repro.core.candidates import CandidateSet
from repro.core.cuts import TimeConstraint
from repro.core.engine import GroupAwareEngine
from repro.core.hitting_set import exact_minimum_hitting_set, greedy_hitting_set
from repro.core.tuples import StreamTuple
from repro.filters.spec import parse_group
from repro.sources import namos_trace

SPECS = [
    "DC1(tmpr4, 0.0620, 0.0310)",
    "DC1(tmpr4, 0.0480, 0.0240)",
    "DC1(tmpr4, 0.0310, 0.0155)",
]


def _instance(n_sets, universe, set_size, seed=11):
    rng = random.Random(seed)
    tuples = [
        StreamTuple(seq=i, timestamp=float(10 * i), values={"v": float(i)})
        for i in range(universe)
    ]
    sets = []
    for index in range(n_sets):
        cs = CandidateSet(f"s{index}")
        for item in rng.sample(tuples, set_size):
            cs.add(item)
        cs.close()
        sets.append(cs)
    return sets


class TestSolverAblation:
    """Greedy vs annealing vs exact (quality and speed)."""

    def test_greedy_solver(self, benchmark):
        sets = _instance(n_sets=40, universe=100, set_size=5)
        selection = benchmark(greedy_hitting_set, sets)
        assert selection.output_size <= 40

    def test_annealing_solver(self, benchmark):
        sets = _instance(n_sets=40, universe=100, set_size=5)
        selection = benchmark(
            lambda: anneal_hitting_set(sets, iterations=2000, rng=random.Random(1))
        )
        assert selection.output_size <= 40

    def test_exact_solver_small(self, benchmark):
        sets = _instance(n_sets=6, universe=12, set_size=3)
        selection = benchmark(exact_minimum_hitting_set, sets)
        assert selection.output_size <= 6

    def test_greedy_quality_close_to_annealing(self, benchmark, capsys):
        sets = _instance(n_sets=40, universe=100, set_size=5)
        greedy = benchmark.pedantic(
            lambda: greedy_hitting_set(sets), rounds=1, iterations=1
        )
        annealed = anneal_hitting_set(sets, iterations=4000, rng=random.Random(1))
        with capsys.disabled():
            print(
                f"\n[solver ablation] greedy={greedy.output_size} tuples, "
                f"annealing={annealed.output_size} tuples "
                "(paper: greedy preferred for timeliness at comparable quality)"
            )
        assert greedy.output_size <= annealed.output_size + 3


class TestSegmentationAblation:
    """Region-based solving vs one whole-stream batch (Theorem 2)."""

    def test_region_based(self, benchmark, capsys):
        trace = namos_trace(n=1500, seed=7)

        def region_based():
            return GroupAwareEngine(parse_group(SPECS), algorithm="region").run(trace)

        result = benchmark(region_based)

        # Whole-stream batch: a single region via an effectively infinite
        # batched accumulation - emulated by flushing only at the end.
        from repro.core.output import BatchedOutput

        batch = GroupAwareEngine(
            parse_group(SPECS),
            algorithm="region",
            output_strategy=BatchedOutput(len(trace) + 1),
        ).run(trace)
        with capsys.disabled():
            region_delay = result.mean_latency_ms
            batch_delay = batch.mean_latency_ms
            print(
                f"\n[segmentation ablation] same bandwidth "
                f"({result.output_count} vs {batch.output_count} tuples); "
                f"latency {region_delay:.0f} ms vs {batch_delay:.0f} ms whole-batch"
            )
        assert result.output_count == batch.output_count  # Theorem 2
        assert result.mean_latency_ms <= batch.mean_latency_ms


class TestTieBreakAblation:
    """Freshest-timestamp vs oldest-timestamp tie-breaking."""

    def test_freshness_tie_break_latency(self, benchmark, capsys):
        trace = namos_trace(n=1500, seed=7)

        def run():
            return GroupAwareEngine(parse_group(SPECS), algorithm="region").run(trace)

        result = benchmark(run)
        # Freshness tie-break picks later tuples: the mean age of chosen
        # tuples at decision time must beat picking the earliest member.
        ages = [e.decide_ts - e.item.timestamp for e in result.emissions]
        with capsys.disabled():
            print(
                f"\n[tie-break ablation] mean chosen-tuple age at decision: "
                f"{sum(ages) / len(ages):.0f} ms (freshness favours recent tuples)"
            )
        assert sum(ages) / len(ages) >= 0.0


class TestPredictorAblation:
    """Cut behaviour with and without overestimation margin."""

    def test_overestimation_margin(self, benchmark, capsys):
        trace = namos_trace(n=1500, seed=7)

        def run(margin):
            return GroupAwareEngine(
                parse_group(SPECS),
                algorithm="region",
                time_constraint=TimeConstraint(120.0, overestimate_ms=margin),
            ).run(trace)

        plain = benchmark(lambda: run(0.0))
        conservative = run(40.0)
        with capsys.disabled():
            print(
                f"\n[predictor ablation] margin 0 ms: "
                f"{plain.percent_regions_cut:.0f}% regions cut, "
                f"max delay {max(e.delay_ms for e in plain.emissions):.0f} ms; "
                f"margin 40 ms: {conservative.percent_regions_cut:.0f}% cut, "
                f"max delay {max(e.delay_ms for e in conservative.emissions):.0f} ms"
            )
        assert conservative.percent_regions_cut >= plain.percent_regions_cut
