"""Benchmarks regenerating Figures 4.9-4.12: effectiveness of timely
cuts on the DC_Fluoro group (cut budgets 125 ms down to 8 ms)."""

N_TUPLES = 2000
REPEATS = 3


def test_fig_4_9(run_experiment):
    """Figure 4.9: tightening the cut budget drops per-tuple latency."""
    report = run_experiment("fig_4_9", n_tuples=N_TUPLES, repeats=REPEATS, seed=7)
    assert report.data["RG+C(05)"] < report.data["RG+C(01)"]


def test_fig_4_10(run_experiment):
    """Figure 4.10: the CPU cost of enforcing cuts stays small."""
    report = run_experiment("fig_4_10", n_tuples=N_TUPLES, repeats=REPEATS, seed=7)
    for cost in report.data.values():
        assert cost < 10.0  # well under the 10 ms arrival interval


def test_fig_4_11(run_experiment):
    """Figure 4.11: tighter budgets cut a larger share of regions."""
    report = run_experiment("fig_4_11", n_tuples=N_TUPLES, repeats=REPEATS, seed=7)
    assert report.data["RG+C(05)"] >= report.data["RG+C(01)"]


def test_fig_4_12(run_experiment):
    """Figure 4.12: cuts affect the O/I ratio only modestly."""
    report = run_experiment("fig_4_12", n_tuples=N_TUPLES, repeats=REPEATS, seed=7)
    ratios = list(report.data.values())
    assert max(ratios) <= 1.0
    assert min(ratios) > 0.0
