"""Benchmarks regenerating the Chapter-5 tables, figures and scenarios."""


def test_table_5_1(run_experiment):
    """Table 5.1: the filter-type taxonomy."""
    report = run_experiment("table_5_1")
    assert len(report.data["types"]) == 4


def test_table_5_2(run_experiment):
    """Table 5.2: the ten heterogeneous filter groups."""
    report = run_experiment("table_5_2", n_tuples=1500, seed=9)
    assert len(report.data["groups"]) == 10


def test_fig_5_2(run_experiment):
    """Figure 5.2: most groups' output ratio falls below 0.8 (paper: 8/10)."""
    report = run_experiment("fig_5_2", n_tuples=3000, seed=9)
    below = sum(1 for ratio in report.data.values() if ratio < 0.8)
    assert below >= 6
    assert all(ratio <= 1.05 for ratio in report.data.values())


def test_table_5_3(run_experiment):
    """Table 5.3: CPU per 100-tuple batch, group-aware vs self-interested."""
    report = run_experiment("table_5_3", n_tuples=2000, seed=9)
    for group, (ga_cost, si_cost) in report.data.items():
        assert ga_cost >= si_cost, group
        assert ga_cost / 100.0 < 10.0, group  # per-tuple cost under arrival rate


def test_fig_5_3(run_experiment):
    """Figure 5.3: CPU overhead ratios exceed 1 (group coordination)."""
    report = run_experiment("fig_5_3", n_tuples=2000, seed=9)
    assert all(ratio > 1.0 for ratio in report.data.values())


def test_fig_5_4_scenario(run_experiment):
    """Section 5.5.1: the chlorine drill saves mesh bandwidth (~15%)."""
    report = run_experiment("fig_5_4_scenario", n_tuples=2000, seed=23)
    assert report.data["saving"] > 0.05
    assert report.data["ga_bytes"] < report.data["si_bytes"]


def test_fig_5_5_scenario(run_experiment):
    """Section 5.5.2: group-aware indexing transmits fewer images."""
    report = run_experiment("fig_5_5_scenario", n_tuples=2000, seed=11)
    assert report.data["ga_images"] <= report.data["si_images"]
    assert report.data["ga_bytes"] <= report.data["si_bytes"]
