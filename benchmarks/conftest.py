"""Shared benchmark plumbing.

Every benchmark regenerates one paper table/figure via the experiment
registry, times it with pytest-benchmark (single round - these are
experiment reproductions, not micro-benchmarks), prints the regenerated
rows, and archives them under ``benchmarks/results/`` so the output
survives pytest's capture.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.experiments import EXPERIMENTS

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def run_experiment(benchmark, results_dir, capsys):
    """Run one experiment id under the benchmark timer and archive it."""

    def runner(experiment_id: str, **kwargs):
        report = benchmark.pedantic(
            lambda: EXPERIMENTS.run(experiment_id, **kwargs),
            rounds=1,
            iterations=1,
        )
        text = str(report)
        (results_dir / f"{experiment_id}.txt").write_text(text + "\n")
        with capsys.disabled():
            print()
            print(text)
        return report

    return runner
