"""Adaptive-QoS benchmark: degradation on vs off under a flash crowd.

Replays one declarative scenario (default
``examples/scenarios/flash-crowd.toml``) twice — once with the
degradation ladder armed, once with it stripped — and compares what the
identical overload did to the subscriber population.  The paper's
graceful-degradation claim is exactly this A/B: with server-driven
fallback levels every subscriber rides out the burst at coarser
granularity and recovers; without them the overflow policy sheds
subscribers (or drowns them in drops).

Usable two ways:

* ``python -m pytest benchmarks/bench_qos.py`` — smoke assertions: the
  armed run keeps every subscriber connected, degrades within its
  declared bound and fully recovers; the disarmed replay of the same
  trace sheds at least one subscriber.
* ``python benchmarks/bench_qos.py`` — prints the comparison table,
  writes the ``BENCH_qos.json`` artifact, and (when
  ``BENCH_QOS_REQUIRE_PASS=1``) exits non-zero unless *both* graded
  verdict manifests pass.

Environment knobs (also used by the CI scenario-smoke job):
``BENCH_QOS_SCENARIO`` (scenario file, default the shipped flash-crowd
example), ``BENCH_QOS_OUT`` (artifact directory for the two runs'
manifests/metrics/events, default none), ``BENCH_QOS_REQUIRE_PASS``
(default ``0`` = report only) and ``BENCH_QOS_JSON`` (summary artifact
path, default ``BENCH_qos.json``; set empty to skip writing).
"""

from __future__ import annotations

import json
import os
import sys
import tempfile

try:
    import repro  # noqa: F401  (already importable when installed)
except ImportError:  # pragma: no cover - script mode from a source checkout
    sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.obs import platform_info
from repro.service.scenario import load_scenario_file, run_scenario

_HERE = os.path.dirname(__file__)
SCENARIO = os.environ.get(
    "BENCH_QOS_SCENARIO",
    os.path.join(_HERE, "..", "examples", "scenarios", "flash-crowd.toml"),
)
OUT_DIR = os.environ.get("BENCH_QOS_OUT", "")
REQUIRE_PASS = os.environ.get("BENCH_QOS_REQUIRE_PASS", "0") == "1"


def _run(degradation: bool) -> dict:
    scenario = load_scenario_file(SCENARIO)
    # The events_observed check grades the run's events.jsonl, so every
    # run gets an artifact directory — a throwaway one unless the caller
    # wants the manifests kept.
    base = OUT_DIR or tempfile.mkdtemp(prefix="bench_qos_")
    out = os.path.join(base, scenario.name + ("" if degradation else "-off"))
    return run_scenario(scenario, degradation=degradation, out_dir=out)


def _row(manifest: dict) -> dict:
    summary = manifest["summary"]
    qos = manifest.get("qos") or {}
    expected = len(manifest["expected_subscribers"])
    retained = len(summary.get("final_subscriptions", []))
    wall = summary.get("wall_s") or 0.0
    delivered = summary.get("delivered_tuples", 0)
    return {
        "degradation": manifest["degradation"],
        "passed": manifest["passed"],
        "subscribers": f"{retained}/{expected}",
        "retained": retained,
        "expected": expected,
        "delivered_tuples": delivered,
        "delivered_tps": round(delivered / wall, 1) if wall > 0 else 0.0,
        "dropped_tuples": summary.get("dropped_tuples", 0),
        "max_level": qos.get("max_level", 0),
        "degrades": qos.get("degraded_events", 0),
        "recoveries": qos.get("recovered_events", 0),
        "recovery_time_s": qos.get("recovery_time_s"),
        "wall_s": wall,
        "failed_checks": [
            c["name"] for c in manifest["checks"] if not c["ok"]
        ],
    }


# ---------------------------------------------------------------------------
# pytest entry points
# ---------------------------------------------------------------------------
def test_degradation_keeps_every_subscriber():
    manifest = _run(degradation=True)
    assert manifest["passed"], [c for c in manifest["checks"] if not c["ok"]]
    row = _row(manifest)
    assert row["retained"] == row["expected"], row
    assert row["recovery_time_s"] is not None, row


def test_same_burst_sheds_without_degradation():
    manifest = _run(degradation=False)
    assert manifest["passed"], [c for c in manifest["checks"] if not c["ok"]]
    row = _row(manifest)
    assert row["retained"] < row["expected"], row


# ---------------------------------------------------------------------------
# script mode
# ---------------------------------------------------------------------------
def main() -> int:
    scenario = load_scenario_file(SCENARIO)
    print(
        f"qos A/B: scenario {scenario.name!r} "
        f"({scenario.config.duration_s}s x2, "
        f"ladder of {len(scenario.config.degradation_levels)} fallback "
        f"levels vs none)"
    )
    rows = []
    for armed in (True, False):
        manifest = _run(degradation=armed)
        row = _row(manifest)
        rows.append(row)
        recovery = (
            f"{row['recovery_time_s']:.2f}s"
            if row["recovery_time_s"] is not None
            else "-"
        )
        print(
            f"  degradation={'on ' if armed else 'off'}: "
            f"verdict={'PASS' if row['passed'] else 'FAIL'} "
            f"subscribers={row['subscribers']} "
            f"delivered={row['delivered_tuples']} "
            f"({row['delivered_tps']:.0f} tps) "
            f"dropped={row['dropped_tuples']} "
            f"max_level={row['max_level']} recovery={recovery}"
        )
        if row["failed_checks"]:
            print(f"    failed checks: {', '.join(row['failed_checks'])}")
    on, off = rows
    survived = on["retained"] == on["expected"]
    shed = off["expected"] - off["retained"]
    print(
        f"  verdict: armed run "
        f"{'retained all' if survived else 'LOST'} subscribers at "
        f"max level {on['max_level']}; disarmed replay shed {shed}"
    )
    artifact = os.environ.get("BENCH_QOS_JSON", "BENCH_qos.json")
    if artifact:
        with open(artifact, "w", encoding="utf-8") as stream:
            json.dump(
                {
                    "scenario": scenario.name,
                    "file": os.path.relpath(SCENARIO),
                    "rows": rows,
                    "platform": platform_info(),
                },
                stream,
                indent=2,
            )
            stream.write("\n")
        print(f"artifact written to {artifact}")
    if REQUIRE_PASS and not all(row["passed"] for row in rows):
        print("FAIL: a graded verdict manifest did not pass")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
