"""Benchmarks regenerating Figures 4.13-4.14: output strategies."""

N_TUPLES = 2000
REPEATS = 3


def test_fig_4_13(run_experiment):
    """Figure 4.13: Pcs < region-gated PS << batched; SI smallest."""
    report = run_experiment("fig_4_13", n_tuples=N_TUPLES, repeats=REPEATS, seed=7)
    assert report.data["SI"] <= report.data["PS(Pcs)"]
    assert report.data["PS(Pcs)"] <= report.data["PS"]
    assert report.data["PS"] <= report.data["PS(B)-400"]


def test_fig_4_14(run_experiment):
    """Figure 4.14: CPU cost across output strategies."""
    report = run_experiment("fig_4_14", n_tuples=N_TUPLES, repeats=REPEATS, seed=7)
    assert report.data["SI"] <= report.data["PS"]
