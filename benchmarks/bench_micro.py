"""Micro-benchmarks of the hot paths (true pytest-benchmark timing).

These complement the table/figure reproductions: they measure raw
throughput of the greedy hitting-set solver, the two engines and the
multicast forwarding so performance regressions are visible.

``BENCH_MICRO_TUPLES`` scales the engine/replay trace lengths (default
1000) so CI smoke jobs can run tiny sizes just to catch perf-path
import or interface errors.
"""

import os
import random

from repro.core.candidates import CandidateSet
from repro.core.engine import GroupAwareEngine, SelfInterestedEngine
from repro.core.hitting_set import greedy_hitting_set
from repro.core.tuples import StreamTuple
from repro.filters.spec import parse_group
from repro.net.multicast import ScribeMulticast
from repro.net.overlay import OverlayNetwork
from repro.sources import namos_trace

SPECS = [
    "DC1(tmpr4, 0.0620, 0.0310)",
    "DC1(tmpr4, 0.0480, 0.0240)",
    "DC1(tmpr4, 0.0310, 0.0155)",
]

N_TUPLES = int(os.environ.get("BENCH_MICRO_TUPLES", "1000"))


def _hitting_instance(n_sets=40, set_size=6, universe=120, seed=3):
    rng = random.Random(seed)
    tuples = [
        StreamTuple(seq=i, timestamp=float(i * 10), values={"v": float(i)})
        for i in range(universe)
    ]
    sets = []
    for index in range(n_sets):
        cs = CandidateSet(f"f{index}")
        start = rng.randrange(universe - set_size)
        for item in tuples[start : start + set_size]:
            cs.add(item)
        cs.close()
        sets.append(cs)
    return sets


def test_greedy_hitting_set_throughput(benchmark):
    sets = _hitting_instance()
    selection = benchmark(greedy_hitting_set, sets)
    assert selection.output_size <= len(sets)


def test_group_aware_engine_throughput(benchmark):
    trace = namos_trace(n=N_TUPLES, seed=7)

    def run():
        return GroupAwareEngine(parse_group(SPECS), algorithm="region").run(trace)

    result = benchmark(run)
    assert result.output_count > 0


def test_per_candidate_set_engine_throughput(benchmark):
    trace = namos_trace(n=N_TUPLES, seed=7)

    def run():
        return GroupAwareEngine(
            parse_group(SPECS), algorithm="per_candidate_set"
        ).run(trace)

    result = benchmark(run)
    assert result.output_count > 0


def test_self_interested_engine_throughput(benchmark):
    trace = namos_trace(n=N_TUPLES, seed=7)

    def run():
        return SelfInterestedEngine(parse_group(SPECS)).run(trace)

    result = benchmark(run)
    assert result.output_count > 0


def test_multicast_publish_throughput(benchmark):
    overlay = OverlayNetwork([f"n{i}" for i in range(16)])
    multicast = ScribeMulticast(overlay)
    multicast.create_group("g")
    for index in range(16):
        multicast.join("g", f"app{index}", f"n{index}")
    recipients = frozenset(f"app{i}" for i in range(0, 16, 2))

    def publish():
        return multicast.publish("g", "n0", recipients, 64, 0.0)

    receipt = benchmark(publish)
    assert len(receipt.delivery_ms) == 8


def test_trace_generation_throughput(benchmark):
    trace = benchmark(namos_trace, 2 * N_TUPLES, 7)
    assert len(trace) == 2 * N_TUPLES


def test_trace_replay_throughput(benchmark):
    trace = namos_trace(n=2 * N_TUPLES, seed=7)

    def scan():
        total = 0.0
        for item in trace:
            total += item.value("tmpr4")
        return total

    assert benchmark(scan) != 0
