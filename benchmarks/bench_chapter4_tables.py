"""Benchmarks regenerating Tables 4.1 and 4.2."""


def test_table_4_1(run_experiment):
    """Table 4.1: specifications for the three filter groups."""
    report = run_experiment("table_4_1", n_tuples=2000, seed=7)
    assert len(report.data["groups"]) == 3


def test_table_4_2(run_experiment):
    """Table 4.2: filter type notations."""
    report = run_experiment("table_4_2")
    assert "RG" in report.data["notations"]
