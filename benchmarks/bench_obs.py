"""Telemetry overhead gate: observability must stay nearly free.

Runs the closed-loop TCP load generator twice over the same offered
trace — telemetry disabled (``trace_sample=0``) vs the default ~1/256
stage sampling — and compares delivered tuples/sec.  The instrumented
pipeline runs every hot-path hook (counter bumps, deterministic sample
checks, the occasional trace stamp), so the delta is the real cost of
shipping ``/metrics``, ``/events`` and stage traces always-on.

Usable two ways:

* ``python -m pytest benchmarks/bench_obs.py`` — smoke assertions: both
  cells finish cleanly and the instrumented run actually produced a
  ``stage_latency`` block;
* ``python benchmarks/bench_obs.py`` — prints the comparison, writes a
  ``BENCH_obs.json`` artifact, and fails (exit 1) when the overhead
  exceeds the gate.

Each cell is run ``BENCH_OBS_REPEATS`` times and the *best* throughput
per cell is compared — best-of-N is the standard defense against a
noisy shared runner penalizing whichever cell a scheduling hiccup hit.

Environment knobs:
``BENCH_OBS_RATE`` (offered tuples/sec, default ``50000``),
``BENCH_OBS_DURATION`` (seconds per cell, default ``1.5``),
``BENCH_OBS_SIZE`` (subscriber preset, default ``tiny``),
``BENCH_OBS_REPEATS`` (runs per cell, default ``3``),
``BENCH_OBS_SAMPLE`` (instrumented sampling period, default ``256``),
``BENCH_OBS_MAX_OVERHEAD_PCT`` (gate, default ``3``; ``0`` reports
without failing),
``BENCH_OBS_MAX_WATCH_OVERHEAD_PCT`` (Watchtower gate vs the sampled
cell, default ``2``; ``0`` reports without failing),
``BENCH_OBS_JSON`` (artifact path, default ``BENCH_obs.json``; set
empty to skip writing).

A third cell runs the sampled pipeline with the in-run Watchtower
polling at 1 Hz — the analysis layer must cost <2% delivered
throughput on top of plain telemetry.
"""

from __future__ import annotations

import json
import os
import sys

try:
    import repro  # noqa: F401  (already importable when installed)
except ImportError:  # pragma: no cover - script mode from a source checkout
    sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.obs import platform_info
from repro.service import LoadGenConfig, run_loadgen

RATE = float(os.environ.get("BENCH_OBS_RATE", "50000"))
DURATION_S = float(os.environ.get("BENCH_OBS_DURATION", "1.5"))
SIZE = os.environ.get("BENCH_OBS_SIZE", "tiny")
REPEATS = int(os.environ.get("BENCH_OBS_REPEATS", "3"))
SAMPLE = int(os.environ.get("BENCH_OBS_SAMPLE", "256"))
MAX_OVERHEAD_PCT = float(os.environ.get("BENCH_OBS_MAX_OVERHEAD_PCT", "3"))
MAX_WATCH_OVERHEAD_PCT = float(
    os.environ.get("BENCH_OBS_MAX_WATCH_OVERHEAD_PCT", "2")
)


def _cell_config(trace_sample: int, watch: bool = False) -> LoadGenConfig:
    return LoadGenConfig(
        rate=RATE,
        duration_s=DURATION_S,
        size=SIZE,
        mode="closed",
        transport="tcp",
        ingest_batch=16,
        adaptive_batch=False,
        trace_sample=trace_sample,
        watch=watch,
        watch_interval_s=1.0,
    )


def _delivered_tps(summary: dict) -> float:
    wall = summary["wall_s"]
    return summary["delivered_tuples"] / wall if wall > 0 else 0.0


def _run_cell(
    trace_sample: int, repeats: int = REPEATS, watch: bool = False
) -> dict:
    """Best-of-N throughput for one sampling period."""
    best: dict | None = None
    for _ in range(max(1, repeats)):
        summary = run_loadgen(_cell_config(trace_sample, watch=watch))
        if not summary["clean_shutdown"]:
            raise RuntimeError(
                f"unclean loadgen shutdown: {summary['errors']}"
            )
        if best is None or _delivered_tps(summary) > _delivered_tps(best):
            best = summary
    return best


# ---------------------------------------------------------------------------
# pytest entry points
# ---------------------------------------------------------------------------
def test_telemetry_off_and_on_both_clean():
    off = run_loadgen(_cell_config(0))
    on = run_loadgen(_cell_config(SAMPLE))
    assert off["clean_shutdown"] and on["clean_shutdown"]
    assert off["stage_latency"] is None
    assert on["stage_latency"] is not None
    assert off["delivered_tuples"] > 0 and on["delivered_tuples"] > 0


def test_watchtower_cell_clean_and_reports_health():
    watched = run_loadgen(_cell_config(SAMPLE, watch=True))
    assert watched["clean_shutdown"], watched["errors"]
    assert watched["delivered_tuples"] > 0
    health = watched["health"]
    assert health is not None and health["schema"] == "repro-health/v1"
    assert health["verdicts"], health


# ---------------------------------------------------------------------------
# script mode
# ---------------------------------------------------------------------------
def main() -> int:
    print(
        f"telemetry overhead: {REPEATS}x best-of per cell, "
        f"{DURATION_S}s closed-loop tcp @ {RATE:.0f} tps offered "
        f"(size={SIZE}, sample=1/{SAMPLE})"
    )
    baseline = _run_cell(0)
    sampled = _run_cell(SAMPLE)
    watched = _run_cell(SAMPLE, watch=True)
    base_tps = _delivered_tps(baseline)
    obs_tps = _delivered_tps(sampled)
    watch_tps = _delivered_tps(watched)
    overhead_pct = (
        (base_tps - obs_tps) / base_tps * 100.0 if base_tps > 0 else 0.0
    )
    watch_overhead_pct = (
        (obs_tps - watch_tps) / obs_tps * 100.0 if obs_tps > 0 else 0.0
    )
    print(
        f"disabled: {base_tps:>9.0f} delivered tps "
        f"({baseline['delivered_tuples']} in {baseline['wall_s']}s)"
    )
    print(
        f"sampled:  {obs_tps:>9.0f} delivered tps "
        f"({sampled['delivered_tuples']} in {sampled['wall_s']}s)"
    )
    print(
        f"watched:  {watch_tps:>9.0f} delivered tps "
        f"({watched['delivered_tuples']} in {watched['wall_s']}s, "
        f"health={watched['health']['status'] if watched['health'] else '-'})"
    )
    print(f"overhead: {overhead_pct:+.2f}% (gate: <{MAX_OVERHEAD_PCT}%)")
    print(
        f"watchtower overhead: {watch_overhead_pct:+.2f}% "
        f"(gate: <{MAX_WATCH_OVERHEAD_PCT}%)"
    )
    traced = sum(
        stage.get("count", 0)
        for stage in (sampled["stage_latency"] or {}).values()
    )
    print(f"stage samples collected under sampling: {traced}")
    artifact = os.environ.get("BENCH_OBS_JSON", "BENCH_obs.json")
    if artifact:
        row = {
            "rate_tps": RATE,
            "duration_s": DURATION_S,
            "size": SIZE,
            "repeats": REPEATS,
            "trace_sample": SAMPLE,
            "baseline_delivered_tps": round(base_tps, 1),
            "sampled_delivered_tps": round(obs_tps, 1),
            "watched_delivered_tps": round(watch_tps, 1),
            "overhead_pct": round(overhead_pct, 3),
            "watch_overhead_pct": round(watch_overhead_pct, 3),
            "max_overhead_pct": MAX_OVERHEAD_PCT,
            "max_watch_overhead_pct": MAX_WATCH_OVERHEAD_PCT,
            "stage_latency": sampled["stage_latency"],
            "health": watched["health"],
            "platform": platform_info(),
        }
        with open(artifact, "w", encoding="utf-8") as stream:
            json.dump([row], stream, indent=2)
            stream.write("\n")
        print(f"trajectory written to {artifact}")
    if MAX_OVERHEAD_PCT > 0 and overhead_pct > MAX_OVERHEAD_PCT:
        print(
            f"FAIL: telemetry overhead {overhead_pct:.2f}% exceeds "
            f"{MAX_OVERHEAD_PCT}%"
        )
        return 1
    if (
        MAX_WATCH_OVERHEAD_PCT > 0
        and watch_overhead_pct > MAX_WATCH_OVERHEAD_PCT
    ):
        print(
            f"FAIL: watchtower overhead {watch_overhead_pct:.2f}% exceeds "
            f"{MAX_WATCH_OVERHEAD_PCT}%"
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
