"""Live-pipeline benchmark: codec x fan-out x ingest batch x workers.

Drives the closed-loop load generator through the TCP gateway
(self-hosted ephemeral server, 8 subscribers by default) over a grid of
wire codecs (``json`` vs ``binary``), decided-batch fan-out strategies
(``per_session`` re-serialization — the PR-3 baseline — vs the
encode-once ``shared`` segment path) and ingest batch sizes, so the
trajectory records what each layer of the fast path buys.

A second sweep scales the *process* axis: the same multi-source
workload against 1 (direct single-process broker), 2 and 4 worker
processes behind the :mod:`repro.service.cluster` router, on the
binary/shared/batched configuration.  Its verdict is the delivered
throughput ratio vs the single process — the whole point of source
sharding.  Because hash placement is uneven at small source counts, the
workers sweep spreads the load over ``BENCH_PIPELINE_CLUSTER_SOURCES``
independent streams (default 16).

Measurement shape: the rate cap is set far above capacity, so the
closed loop's pacing never sleeps — every cell gets the same fixed wall
budget (``duration_s``) and offers tuples back-to-back, each offer
resolving when the broker has processed it.  ``offered_rate_tps`` is
therefore the end-to-end pipeline throughput (encode, wire, decode,
decide, fan-out, deliver), with none of the open-loop task-storm and
drain-tail variance.

Usable two ways:

* ``python -m pytest benchmarks/bench_pipeline.py`` — smoke assertions:
  the fast-path and baseline cells finish cleanly and deliver tuples,
  and ``--verify`` passes under both codecs (tiny sizes);
* ``python benchmarks/bench_pipeline.py`` — prints the sweep table,
  writes the ``BENCH_pipeline.json`` trajectory artifact, and (when
  ``BENCH_PIPELINE_MIN_SPEEDUP`` > 0) exits non-zero if the full fast
  path (binary codec + shared fan-out + largest ingest batch) fails to
  reach that multiple of the PR-3 JSON baseline's throughput.

Environment knobs (also used by the CI pipeline-bench-smoke and
cluster-bench-smoke jobs): ``BENCH_PIPELINE_RATE`` (rate cap in
tuples/sec — keep it far above capacity so the closed loop never
sleeps; default ``100000``), ``BENCH_PIPELINE_DURATION`` (seconds per
cell, default ``1.5``), ``BENCH_PIPELINE_SIZE`` (subscriber preset,
default ``small`` = 8), ``BENCH_PIPELINE_BATCHES`` (comma list of
ingest batch sizes, default ``1,16``), ``BENCH_PIPELINE_TUPLE_BYTES``
(default ``256``), ``BENCH_PIPELINE_MIN_SPEEDUP`` (default ``0`` =
report only), ``BENCH_PIPELINE_STRATEGIES`` (comma list of
``codec/fanout`` pairs for the codec grid; empty skips it),
``BENCH_PIPELINE_WORKERS`` (comma list of worker counts for the
process-scaling sweep, default ``1,2,4``; empty skips it),
``BENCH_PIPELINE_CLUSTER_SOURCES`` / ``BENCH_PIPELINE_CLUSTER_SIZE``
(source streams and per-source subscriber preset of that sweep,
defaults ``16`` / ``tiny``), ``BENCH_PIPELINE_MIN_WORKER_SPEEDUP``
(default ``0`` = report only: required delivered-throughput multiple of
the largest multi-worker cell over the 1-worker cell — CI gates 4
workers at 1.8x), and
``BENCH_PIPELINE_JSON`` (artifact path, default ``BENCH_pipeline.json``;
set empty to skip writing).

Note the worker sweep only shows speedups on a multi-core host: the
workers are real OS processes, so on a single hardware thread they just
time-slice one core and the router hop makes them *slower* than the
direct single process.
"""

from __future__ import annotations

import json
import os
import sys

try:
    import repro  # noqa: F401  (already importable when installed)
except ImportError:  # pragma: no cover - script mode from a source checkout
    sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.obs import platform_info
from repro.service import LoadGenConfig, run_loadgen

RATE = float(os.environ.get("BENCH_PIPELINE_RATE", "100000"))
DURATION_S = float(os.environ.get("BENCH_PIPELINE_DURATION", "1.5"))
SIZE = os.environ.get("BENCH_PIPELINE_SIZE", "small")
BATCHES = [
    int(part)
    for part in os.environ.get("BENCH_PIPELINE_BATCHES", "1,16").split(",")
    if part.strip()
]
TUPLE_BYTES = int(os.environ.get("BENCH_PIPELINE_TUPLE_BYTES", "256"))
MIN_SPEEDUP = float(os.environ.get("BENCH_PIPELINE_MIN_SPEEDUP", "0"))
WORKERS = [
    int(part)
    for part in os.environ.get("BENCH_PIPELINE_WORKERS", "1,2,4").split(",")
    if part.strip()
]
CLUSTER_SOURCES = int(os.environ.get("BENCH_PIPELINE_CLUSTER_SOURCES", "16"))
CLUSTER_SIZE = os.environ.get("BENCH_PIPELINE_CLUSTER_SIZE", "tiny")
MIN_WORKER_SPEEDUP = float(
    os.environ.get("BENCH_PIPELINE_MIN_WORKER_SPEEDUP", "0")
)

#: The codec grid: (codec, fanout) pairs.  json/per_session is the PR-3
#: baseline; binary/shared is the full fast path.
STRATEGIES = [
    tuple(pair.split("/"))
    for pair in os.environ.get(
        "BENCH_PIPELINE_STRATEGIES",
        "json/per_session,json/shared,binary/per_session,binary/shared",
    ).split(",")
    if pair.strip()
]


def _cell_config(
    codec: str,
    fanout: str,
    ingest_batch: int,
    *,
    verify: bool = False,
    rate: float = RATE,
    duration_s: float = DURATION_S,
    algorithm: str = "region",
    size: str = SIZE,
    sources: int = 1,
    workers: int = 1,
    drain_trace: bool = False,
) -> LoadGenConfig:
    # adaptive_batch off: the ingest-batch axis measures *fixed* batch
    # sizes (comparable to prior trajectories and across worker counts);
    # the AIMD controller's behavior is covered by tests/manifests, not
    # by these cells.
    return LoadGenConfig(
        adaptive_batch=False,
        rate=rate,
        duration_s=duration_s,
        size=size,
        mode="closed",
        algorithm=algorithm,
        tuple_size_bytes=TUPLE_BYTES,
        transport="tcp",
        codec=codec,
        fanout=fanout,
        ingest_batch=ingest_batch,
        verify=verify,
        sources=sources,
        workers=workers,
        drain_trace=drain_trace,
    )


def _row(summary: dict, fanout: str, ingest_batch: int, size: str) -> dict:
    return {
        "codec": summary["codec"],
        "fanout": fanout,
        "ingest_batch": ingest_batch,
        "workers": summary["workers"],
        "sources": len(summary["source_streams"]),
        "size": size,
        "rate_tps": RATE,
        "tuple_bytes": TUPLE_BYTES,
        "duration_s": DURATION_S,
        "offered": summary["offered"],
        "shed": summary["shed"],
        "offered_rate_tps": round(summary["offered_rate_tps"], 1),
        "delivered_tuples": summary["delivered_tuples"],
        "dropped_tuples": summary["dropped_tuples"],
        "decide_p50_ms": summary["decide_latency_ms"]["p50"],
        "decide_p99_ms": summary["decide_latency_ms"]["p99"],
        "wall_s": summary["wall_s"],
        "clean_shutdown": summary["clean_shutdown"],
        "platform": platform_info(),
    }


def _run_cell(codec: str, fanout: str, ingest_batch: int) -> dict:
    summary = run_loadgen(_cell_config(codec, fanout, ingest_batch))
    return _row(summary, fanout, ingest_batch, SIZE)


def _run_worker_cell(workers: int) -> dict:
    """One process-scaling cell: binary/shared/batched, many sources."""
    batch = max(BATCHES, default=16)
    summary = run_loadgen(
        _cell_config(
            "binary",
            "shared",
            batch,
            size=CLUSTER_SIZE,
            sources=CLUSTER_SOURCES,
            workers=workers,
        )
    )
    return _row(summary, "shared", batch, CLUSTER_SIZE)


def _speedup(rows: list[dict]) -> dict:
    """Fast path vs PR-3 baseline, both at their best ingest batch."""

    def best(codec: str, fanout: str, batch=None) -> float:
        rates = [
            row["offered_rate_tps"]
            for row in rows
            if row["codec"] == codec
            and row["fanout"] == fanout
            and (batch is None or row["ingest_batch"] == batch)
        ]
        return max(rates, default=0.0)

    baseline = best("json", "per_session", batch=min(BATCHES))
    fastpath = best("binary", "shared")
    return {
        "baseline_json_per_session_tps": baseline,
        "fastpath_binary_shared_tps": fastpath,
        "speedup": round(fastpath / baseline, 3) if baseline > 0 else 0.0,
    }


def _worker_speedup(rows: list[dict]) -> dict:
    """Delivered-tuple throughput of each worker count vs one process."""
    by_workers = {row["workers"]: row for row in rows}
    base = by_workers.get(1)
    base_tps = (
        base["delivered_tuples"] / base["wall_s"]
        if base is not None and base["wall_s"] > 0
        else 0.0
    )
    speedups = {}
    for workers, row in sorted(by_workers.items()):
        tps = row["delivered_tuples"] / row["wall_s"] if row["wall_s"] > 0 else 0.0
        speedups[str(workers)] = {
            "delivered_tps": round(tps, 1),
            "speedup_vs_1": round(tps / base_tps, 3) if base_tps > 0 else 0.0,
        }
    top = max((w for w in by_workers if w > 1), default=None)
    return {
        "per_workers": speedups,
        "best_multi_worker_speedup": (
            speedups[str(top)]["speedup_vs_1"] if top is not None else 0.0
        ),
    }


# ---------------------------------------------------------------------------
# pytest entry points
# ---------------------------------------------------------------------------
def test_baseline_cell_clean():
    row = _run_cell("json", "per_session", min(BATCHES))
    assert row["clean_shutdown"] is True, row
    assert row["delivered_tuples"] > 0, row


def test_fastpath_cell_clean():
    row = _run_cell("binary", "shared", max(BATCHES))
    assert row["clean_shutdown"] is True, row
    assert row["delivered_tuples"] > 0, row
    assert row["decide_p99_ms"] >= row["decide_p50_ms"] >= 0.0, row


def test_verify_passes_under_both_codecs():
    # The acceptance gate: a verified closed-loop run must be
    # batch-equivalent whichever codec carried it.
    for codec in ("json", "binary"):
        summary = run_loadgen(
            _cell_config(
                codec, "shared", 4, verify=True, rate=500.0, duration_s=1.0
            )
        )
        assert summary["codec"] == codec, summary
        assert summary["equivalent_to_batch"] is True, (codec, summary)
        assert summary["clean_shutdown"] is True, (codec, summary)


def test_cluster_verify_and_streams_identical_across_worker_counts():
    """Sharding is semantics-free: under both decide algorithms, a
    verified run delivers byte-identical per-subscriber streams whether
    one process or a 2-worker fleet serves it."""
    for algorithm in ("region", "per_candidate_set"):
        digests = {}
        for workers in (1, 2):
            # drain_trace: digests are only comparable across runs when
            # both replayed the identical offered set, so the trace is
            # offered in full regardless of the wall budget.
            summary = run_loadgen(
                _cell_config(
                    "binary",
                    "shared",
                    8,
                    verify=True,
                    rate=400.0,
                    duration_s=1.0,
                    algorithm=algorithm,
                    size="tiny",
                    sources=2,
                    workers=workers,
                    drain_trace=True,
                )
            )
            assert summary["equivalent_to_batch"] is True, (
                algorithm,
                workers,
                summary,
            )
            assert summary["clean_shutdown"] is True, (algorithm, workers, summary)
            digests[workers] = summary["delivered_digest"]
        assert digests[1] == digests[2], (algorithm, digests)


# ---------------------------------------------------------------------------
# script mode
# ---------------------------------------------------------------------------
def _print_row(row: dict) -> None:
    print(
        f"{row['codec']:>7} {row['fanout']:>12} {row['ingest_batch']:>6} "
        f"{row['workers']:>3} {row['offered']:>8} "
        f"{row['offered_rate_tps']:>9.0f} "
        f"{row['delivered_tuples']:>8} {row['decide_p50_ms']:>8.2f} "
        f"{row['decide_p99_ms']:>8.2f} "
        f"{'y' if row['clean_shutdown'] else 'N'!s:>3}"
    )


def main() -> int:
    grid = [
        (codec, fanout, batch)
        for codec, fanout in STRATEGIES
        for batch in BATCHES
    ]
    print(
        f"pipeline sweep: {len(grid)} codec cells + {len(WORKERS)} worker "
        f"cells x {DURATION_S}s (size={SIZE}, rate={RATE:.0f}, "
        f"bytes={TUPLE_BYTES}, batches={BATCHES}, workers={WORKERS}, "
        f"cluster_sources={CLUSTER_SOURCES})"
    )
    header = (
        f"{'codec':>7} {'fanout':>12} {'batch':>6} {'wrk':>3} {'offered':>8} "
        f"{'tps':>9} {'deliv':>8} {'p50 ms':>8} {'p99 ms':>8} {'ok':>3}"
    )
    print(header)
    rows = []
    for codec, fanout, batch in grid:
        row = _run_cell(codec, fanout, batch)
        rows.append(row)
        _print_row(row)
        if not row["clean_shutdown"]:
            return 1
    worker_rows = []
    for workers in WORKERS:
        row = _run_worker_cell(workers)
        worker_rows.append(row)
        _print_row(row)
        if not row["clean_shutdown"]:
            return 1
    verdict = _speedup(rows) if rows else None
    if verdict is not None:
        print(
            f"fast path (binary/shared) "
            f"{verdict['fastpath_binary_shared_tps']:.0f} tps "
            f"vs baseline (json/per_session) "
            f"{verdict['baseline_json_per_session_tps']:.0f} tps "
            f"= {verdict['speedup']:.2f}x"
        )
    worker_verdict = _worker_speedup(worker_rows) if worker_rows else None
    if worker_verdict is not None:
        scaling = ", ".join(
            f"{workers}w={stats['speedup_vs_1']:.2f}x"
            f" ({stats['delivered_tps']:.0f} tps)"
            for workers, stats in worker_verdict["per_workers"].items()
        )
        print(f"process scaling (delivered tps vs 1 worker): {scaling}")
    artifact = os.environ.get("BENCH_PIPELINE_JSON", "BENCH_pipeline.json")
    if artifact:
        with open(artifact, "w", encoding="utf-8") as stream:
            json.dump(
                {
                    "rows": rows,
                    "speedup": verdict,
                    "worker_rows": worker_rows,
                    "worker_speedup": worker_verdict,
                },
                stream,
                indent=2,
            )
            stream.write("\n")
        print(f"trajectory written to {artifact}")
    if (
        MIN_SPEEDUP > 0
        and verdict is not None
        and verdict["speedup"] < MIN_SPEEDUP
    ):
        print(
            f"FAIL: fast-path speedup {verdict['speedup']:.2f}x is below "
            f"the required {MIN_SPEEDUP:.2f}x"
        )
        return 1
    if (
        MIN_WORKER_SPEEDUP > 0
        and worker_verdict is not None
        and worker_verdict["best_multi_worker_speedup"] < MIN_WORKER_SPEEDUP
    ):
        print(
            f"FAIL: worker scaling "
            f"{worker_verdict['best_multi_worker_speedup']:.2f}x is below "
            f"the required {MIN_WORKER_SPEEDUP:.2f}x"
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
