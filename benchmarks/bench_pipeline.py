"""Live-pipeline benchmark: codec x fan-out strategy x ingest batch.

Drives the closed-loop load generator through the TCP gateway
(self-hosted ephemeral server, 8 subscribers by default) over a grid of
wire codecs (``json`` vs ``binary``), decided-batch fan-out strategies
(``per_session`` re-serialization — the PR-3 baseline — vs the
encode-once ``shared`` segment path) and ingest batch sizes, so the
trajectory records what each layer of the fast path buys.

Measurement shape: the rate cap is set far above capacity, so the
closed loop's pacing never sleeps — every cell gets the same fixed wall
budget (``duration_s``) and offers tuples back-to-back, each offer
resolving when the broker has processed it.  ``offered_rate_tps`` is
therefore the end-to-end pipeline throughput (encode, wire, decode,
decide, fan-out, deliver), with none of the open-loop task-storm and
drain-tail variance.

Usable two ways:

* ``python -m pytest benchmarks/bench_pipeline.py`` — smoke assertions:
  the fast-path and baseline cells finish cleanly and deliver tuples,
  and ``--verify`` passes under both codecs (tiny sizes);
* ``python benchmarks/bench_pipeline.py`` — prints the sweep table,
  writes the ``BENCH_pipeline.json`` trajectory artifact, and (when
  ``BENCH_PIPELINE_MIN_SPEEDUP`` > 0) exits non-zero if the full fast
  path (binary codec + shared fan-out + largest ingest batch) fails to
  reach that multiple of the PR-3 JSON baseline's throughput.

Environment knobs (also used by the CI pipeline-bench-smoke job):
``BENCH_PIPELINE_RATE`` (rate cap in tuples/sec — keep it far above
capacity so the closed loop never sleeps; default ``100000``),
``BENCH_PIPELINE_DURATION`` (seconds per cell, default ``1.5``),
``BENCH_PIPELINE_SIZE`` (subscriber preset, default ``small`` = 8),
``BENCH_PIPELINE_BATCHES`` (comma list of ingest batch sizes, default
``1,16``), ``BENCH_PIPELINE_TUPLE_BYTES`` (default ``256``),
``BENCH_PIPELINE_MIN_SPEEDUP`` (default ``0`` = report only),
``BENCH_PIPELINE_JSON`` (artifact path, default ``BENCH_pipeline.json``;
set empty to skip writing).
"""

from __future__ import annotations

import json
import os
import sys

try:
    import repro  # noqa: F401  (already importable when installed)
except ImportError:  # pragma: no cover - script mode from a source checkout
    sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.service import LoadGenConfig, run_loadgen

RATE = float(os.environ.get("BENCH_PIPELINE_RATE", "100000"))
DURATION_S = float(os.environ.get("BENCH_PIPELINE_DURATION", "1.5"))
SIZE = os.environ.get("BENCH_PIPELINE_SIZE", "small")
BATCHES = [
    int(part)
    for part in os.environ.get("BENCH_PIPELINE_BATCHES", "1,16").split(",")
    if part.strip()
]
TUPLE_BYTES = int(os.environ.get("BENCH_PIPELINE_TUPLE_BYTES", "256"))
MIN_SPEEDUP = float(os.environ.get("BENCH_PIPELINE_MIN_SPEEDUP", "0"))

#: The sweep: (codec, fanout) pairs.  json/per_session is the PR-3
#: baseline; binary/shared is the full fast path.
STRATEGIES = [
    ("json", "per_session"),
    ("json", "shared"),
    ("binary", "per_session"),
    ("binary", "shared"),
]


def _cell_config(
    codec: str,
    fanout: str,
    ingest_batch: int,
    *,
    verify: bool = False,
    rate: float = RATE,
    duration_s: float = DURATION_S,
    algorithm: str = "region",
) -> LoadGenConfig:
    return LoadGenConfig(
        rate=rate,
        duration_s=duration_s,
        size=SIZE,
        mode="closed",
        algorithm=algorithm,
        tuple_size_bytes=TUPLE_BYTES,
        transport="tcp",
        codec=codec,
        fanout=fanout,
        ingest_batch=ingest_batch,
        verify=verify,
    )


def _run_cell(codec: str, fanout: str, ingest_batch: int) -> dict:
    summary = run_loadgen(_cell_config(codec, fanout, ingest_batch))
    return {
        "codec": summary["codec"],
        "fanout": fanout,
        "ingest_batch": ingest_batch,
        "size": SIZE,
        "rate_tps": RATE,
        "tuple_bytes": TUPLE_BYTES,
        "duration_s": DURATION_S,
        "offered": summary["offered"],
        "shed": summary["shed"],
        "offered_rate_tps": round(summary["offered_rate_tps"], 1),
        "delivered_tuples": summary["delivered_tuples"],
        "dropped_tuples": summary["dropped_tuples"],
        "decide_p50_ms": summary["decide_latency_ms"]["p50"],
        "decide_p99_ms": summary["decide_latency_ms"]["p99"],
        "wall_s": summary["wall_s"],
        "clean_shutdown": summary["clean_shutdown"],
    }


def _speedup(rows: list[dict]) -> dict:
    """Fast path vs PR-3 baseline, both at their best ingest batch."""

    def best(codec: str, fanout: str, batch=None) -> float:
        rates = [
            row["offered_rate_tps"]
            for row in rows
            if row["codec"] == codec
            and row["fanout"] == fanout
            and (batch is None or row["ingest_batch"] == batch)
        ]
        return max(rates, default=0.0)

    baseline = best("json", "per_session", batch=min(BATCHES))
    fastpath = best("binary", "shared")
    return {
        "baseline_json_per_session_tps": baseline,
        "fastpath_binary_shared_tps": fastpath,
        "speedup": round(fastpath / baseline, 3) if baseline > 0 else 0.0,
    }


# ---------------------------------------------------------------------------
# pytest entry points
# ---------------------------------------------------------------------------
def test_baseline_cell_clean():
    row = _run_cell("json", "per_session", min(BATCHES))
    assert row["clean_shutdown"] is True, row
    assert row["delivered_tuples"] > 0, row


def test_fastpath_cell_clean():
    row = _run_cell("binary", "shared", max(BATCHES))
    assert row["clean_shutdown"] is True, row
    assert row["delivered_tuples"] > 0, row
    assert row["decide_p99_ms"] >= row["decide_p50_ms"] >= 0.0, row


def test_verify_passes_under_both_codecs():
    # The acceptance gate: a verified closed-loop run must be
    # batch-equivalent whichever codec carried it.
    for codec in ("json", "binary"):
        summary = run_loadgen(
            _cell_config(
                codec, "shared", 4, verify=True, rate=500.0, duration_s=1.0
            )
        )
        assert summary["codec"] == codec, summary
        assert summary["equivalent_to_batch"] is True, (codec, summary)
        assert summary["clean_shutdown"] is True, (codec, summary)


# ---------------------------------------------------------------------------
# script mode
# ---------------------------------------------------------------------------
def main() -> int:
    grid = [
        (codec, fanout, batch)
        for codec, fanout in STRATEGIES
        for batch in BATCHES
    ]
    print(
        f"pipeline sweep: {len(grid)} cells x {DURATION_S}s "
        f"(size={SIZE}, rate={RATE:.0f}, bytes={TUPLE_BYTES}, "
        f"batches={BATCHES})"
    )
    header = (
        f"{'codec':>7} {'fanout':>12} {'batch':>6} {'offered':>8} "
        f"{'tps':>9} {'deliv':>8} {'p50 ms':>8} {'p99 ms':>8} {'ok':>3}"
    )
    print(header)
    rows = []
    for codec, fanout, batch in grid:
        row = _run_cell(codec, fanout, batch)
        rows.append(row)
        print(
            f"{row['codec']:>7} {row['fanout']:>12} {row['ingest_batch']:>6} "
            f"{row['offered']:>8} {row['offered_rate_tps']:>9.0f} "
            f"{row['delivered_tuples']:>8} {row['decide_p50_ms']:>8.1f} "
            f"{row['decide_p99_ms']:>8.1f} "
            f"{'y' if row['clean_shutdown'] else 'N'!s:>3}"
        )
        if not row["clean_shutdown"]:
            return 1
    verdict = _speedup(rows)
    print(
        f"fast path (binary/shared) {verdict['fastpath_binary_shared_tps']:.0f} tps "
        f"vs baseline (json/per_session) "
        f"{verdict['baseline_json_per_session_tps']:.0f} tps "
        f"= {verdict['speedup']:.2f}x"
    )
    artifact = os.environ.get("BENCH_PIPELINE_JSON", "BENCH_pipeline.json")
    if artifact:
        with open(artifact, "w", encoding="utf-8") as stream:
            json.dump({"rows": rows, "speedup": verdict}, stream, indent=2)
            stream.write("\n")
        print(f"trajectory written to {artifact}")
    if MIN_SPEEDUP > 0 and verdict["speedup"] < MIN_SPEEDUP:
        print(
            f"FAIL: fast-path speedup {verdict['speedup']:.2f}x is below "
            f"the required {MIN_SPEEDUP:.2f}x"
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
