"""Benchmarks regenerating Figures 4.19-4.24: multiple data sources."""


def test_fig_4_19(run_experiment):
    """Figure 4.19: filter specifications for cow/volcano/fire."""
    report = run_experiment("fig_4_19", n_tuples=2000, seed=7)
    assert set(report.data) == {"DC_cow", "DC_volcano", "DC_fireExp"}


def test_fig_4_20(run_experiment):
    """Figure 4.20: per-source savings; the smooth fire curve saves the
    most, the bursty cow trace the least."""
    report = run_experiment("fig_4_20", n_tuples=3000, seed=7)
    relative = {
        name: ratios["RG"] / ratios["SI"] for name, ratios in report.data.items()
    }
    assert relative["DC_fireExp"] < relative["DC_volcano"]
    assert relative["DC_volcano"] <= relative["DC_cow"] * 1.05
    for name, ratios in report.data.items():
        assert ratios["RG"] <= ratios["SI"], name


def test_fig_4_21(run_experiment):
    """Figure 4.21: the cow orientation trace shape."""
    report = run_experiment("fig_4_21", n_tuples=2000, seed=7)
    assert report.data["max"] - report.data["min"] > 1.0  # visible bursts


def test_fig_4_22(run_experiment):
    """Figure 4.22: the volcano seismic trace shape."""
    report = run_experiment("fig_4_22", n_tuples=2000, seed=7)
    assert abs(report.data["max"]) < 0.2  # near-zero signal


def test_fig_4_23(run_experiment):
    """Figure 4.23: the fire HRR(Q) growth curve."""
    report = run_experiment("fig_4_23", n_tuples=2000, seed=7)
    assert report.data["max"] > 3.0


def test_fig_4_24(run_experiment):
    """Figure 4.24: CPU cost per source; GA overhead stays bounded."""
    report = run_experiment("fig_4_24", n_tuples=2000, seed=7)
    for name, costs in report.data.items():
        assert costs["RG"] >= costs["SI"] * 0.5, name
