"""Live-service benchmark: loadgen sweep across rate x payload x policy.

Runs the open-loop load generator over a grid of offered rates, tuple
payload sizes and overflow policies, once with the broker in-process and
once across a real TCP socket (the self-hosted gateway), so the
trajectory records both the engine's ceiling and the wire's tax.

Usable two ways:

* ``python -m pytest benchmarks/bench_service.py`` — smoke assertions:
  both transports finish cleanly, deliver tuples and report decide
  percentiles (tiny grid);
* ``python benchmarks/bench_service.py`` — prints the sweep table and
  writes a ``BENCH_service.json`` trajectory artifact — one row per
  grid cell with in-process vs TCP throughput/latency columns — next to
  ``BENCH_runtime.json``, so successive CI runs accumulate a service
  perf history to diff against.

Environment knobs (also used by the CI network-smoke job):
``BENCH_SERVICE_RATES`` (comma list of tuples/sec, default ``400,800``),
``BENCH_SERVICE_TUPLE_BYTES`` (comma list, default ``64,512``),
``BENCH_SERVICE_POLICIES`` (comma list, default ``block,drop_oldest``),
``BENCH_SERVICE_DURATION`` (seconds per cell, default ``1.0``),
``BENCH_SERVICE_SIZE`` (subscriber preset, default ``tiny``),
``BENCH_SERVICE_JSON`` (artifact path, default ``BENCH_service.json``;
set empty to skip writing).
"""

from __future__ import annotations

import json
import os
import sys

try:
    import repro  # noqa: F401  (already importable when installed)
except ImportError:  # pragma: no cover - script mode from a source checkout
    sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.obs import platform_info
from repro.service import LoadGenConfig, run_loadgen

RATES = [
    float(part)
    for part in os.environ.get("BENCH_SERVICE_RATES", "400,800").split(",")
    if part.strip()
]
TUPLE_BYTES = [
    int(part)
    for part in os.environ.get("BENCH_SERVICE_TUPLE_BYTES", "64,512").split(",")
    if part.strip()
]
POLICIES = [
    part.strip()
    for part in os.environ.get(
        "BENCH_SERVICE_POLICIES", "block,drop_oldest"
    ).split(",")
    if part.strip()
]
DURATION_S = float(os.environ.get("BENCH_SERVICE_DURATION", "1.0"))
SIZE = os.environ.get("BENCH_SERVICE_SIZE", "tiny")


def _cell_config(
    transport: str, rate: float, tuple_bytes: int, policy: str
) -> LoadGenConfig:
    return LoadGenConfig(
        rate=rate,
        duration_s=DURATION_S,
        size=SIZE,
        mode="open",
        overflow=policy,
        tuple_size_bytes=tuple_bytes,
        transport=transport,
    )


def _run_cell(
    transport: str, rate: float, tuple_bytes: int, policy: str
) -> dict:
    summary = run_loadgen(_cell_config(transport, rate, tuple_bytes, policy))
    return {
        "transport": transport,
        "rate_tps": rate,
        "tuple_bytes": tuple_bytes,
        "overflow": policy,
        "size": SIZE,
        "duration_s": DURATION_S,
        "offered": summary["offered"],
        "shed": summary["shed"],
        "offered_rate_tps": round(summary["offered_rate_tps"], 1),
        "delivered_tuples": summary["delivered_tuples"],
        "dropped_tuples": summary["dropped_tuples"],
        "decide_p50_ms": summary["decide_latency_ms"]["p50"],
        "decide_p99_ms": summary["decide_latency_ms"]["p99"],
        "wall_s": summary["wall_s"],
        "clean_shutdown": summary["clean_shutdown"],
        "platform": platform_info(),
    }


# ---------------------------------------------------------------------------
# pytest entry points
# ---------------------------------------------------------------------------
def test_inproc_cell_clean():
    row = _run_cell("inproc", min(RATES), min(TUPLE_BYTES), POLICIES[0])
    assert row["clean_shutdown"] is True, row
    assert row["delivered_tuples"] > 0, row
    assert row["decide_p99_ms"] >= row["decide_p50_ms"] >= 0.0, row


def test_tcp_cell_clean():
    row = _run_cell("tcp", min(RATES), min(TUPLE_BYTES), POLICIES[0])
    assert row["clean_shutdown"] is True, row
    assert row["delivered_tuples"] > 0, row
    assert row["decide_p99_ms"] >= row["decide_p50_ms"] >= 0.0, row


# ---------------------------------------------------------------------------
# script mode
# ---------------------------------------------------------------------------
def main() -> int:
    grid = [
        (transport, rate, tuple_bytes, policy)
        for transport in ("inproc", "tcp")
        for rate in RATES
        for tuple_bytes in TUPLE_BYTES
        for policy in POLICIES
    ]
    print(
        f"service sweep: {len(grid)} cells x {DURATION_S}s "
        f"(size={SIZE}, rates={RATES}, bytes={TUPLE_BYTES}, "
        f"policies={POLICIES})"
    )
    header = (
        f"{'transport':>9} {'rate':>6} {'bytes':>6} {'policy':>12} "
        f"{'offered':>8} {'deliv':>7} {'drop':>6} {'p50 ms':>8} "
        f"{'p99 ms':>8} {'ok':>3}"
    )
    print(header)
    rows = []
    for transport, rate, tuple_bytes, policy in grid:
        row = _run_cell(transport, rate, tuple_bytes, policy)
        rows.append(row)
        print(
            f"{row['transport']:>9} {row['rate_tps']:>6.0f} "
            f"{row['tuple_bytes']:>6} {row['overflow']:>12} "
            f"{row['offered']:>8} {row['delivered_tuples']:>7} "
            f"{row['dropped_tuples']:>6} {row['decide_p50_ms']:>8.1f} "
            f"{row['decide_p99_ms']:>8.1f} "
            f"{'y' if row['clean_shutdown'] else 'N'!s:>3}"
        )
        if not row["clean_shutdown"]:
            return 1
    artifact = os.environ.get("BENCH_SERVICE_JSON", "BENCH_service.json")
    if artifact:
        with open(artifact, "w", encoding="utf-8") as stream:
            json.dump(rows, stream, indent=2)
            stream.write("\n")
        print(f"trajectory written to {artifact}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
