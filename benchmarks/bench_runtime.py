"""Sharded-runtime benchmark: speedup vs. the sequential engine.

Runs the chapter-4 core workload (the Table 4.1 filter groups under the
RG and PS algorithms, replicated across seeds) once sequentially and
once per shard count, verifying that the sharded runs' decided outputs
are identical to the sequential run before reporting throughput.

Usable two ways:

* ``python -m pytest benchmarks/bench_runtime.py`` — correctness +
  speedup assertions (the >=1.5x-at-4-shards assertion is skipped on
  machines with fewer than 4 CPUs, where hardware parallelism does not
  exist to be measured);
* ``python benchmarks/bench_runtime.py`` — prints the shards/wall-ms/
  speedup table.

Script mode also writes a ``BENCH_runtime.json`` trajectory artifact —
one ``{"size", "shards", "wall_s", "speedup"}`` row per shard count —
so successive CI runs accumulate a perf history to diff against.

Environment knobs (also used by the CI bench-smoke job):
``BENCH_RUNTIME_TUPLES`` (trace length, default 2000),
``BENCH_RUNTIME_REPLICAS`` (workload copies, default 3),
``BENCH_RUNTIME_SHARDS`` (comma list, default ``1,2,4,8``),
``BENCH_RUNTIME_JSON`` (artifact path, default ``BENCH_runtime.json``;
set empty to skip writing),
``BENCH_RUNTIME_REQUIRE_SPEEDUP`` (default ``1``; set ``0`` on noisy
shared runners to report the measured speedup without failing on it —
correctness/determinism is always enforced).
"""

from __future__ import annotations

import json
import os
import sys
import time

try:
    import repro  # noqa: F401  (already importable when installed)
except ImportError:  # pragma: no cover - script mode from a source checkout
    sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

import pytest

from repro.experiments.configs import TABLE_4_1_GROUPS
from repro.obs import platform_info
from repro.runtime import EngineConfig, GroupTask, run_sequential, run_tasks
from repro.sources.namos import namos_trace

N_TUPLES = int(os.environ.get("BENCH_RUNTIME_TUPLES", "2000"))
REPLICAS = int(os.environ.get("BENCH_RUNTIME_REPLICAS", "3"))
SHARD_COUNTS = [
    int(part)
    for part in os.environ.get("BENCH_RUNTIME_SHARDS", "1,2,4,8").split(",")
    if part.strip()
]

_ALGORITHMS = {"RG": "region", "PS": "per_candidate_set"}


def chapter4_workload(n_tuples: int = N_TUPLES, replicas: int = REPLICAS) -> list[GroupTask]:
    """Table 4.1 groups x {RG, PS} x ``replicas`` seeded traces."""
    tasks = []
    for replica in range(replicas):
        trace = namos_trace(n=n_tuples, seed=7 + replica)
        for group_name, specs in TABLE_4_1_GROUPS.items():
            for variant, algorithm in _ALGORITHMS.items():
                tasks.append(
                    GroupTask.build(
                        key=f"{group_name}/{variant}/s{replica}",
                        specs=specs,
                        stream=trace,
                        config=EngineConfig(algorithm=algorithm),
                    )
                )
    return tasks


def _timed(fn):
    started = time.perf_counter()
    result = fn()
    return (time.perf_counter() - started) * 1e3, result


# ---------------------------------------------------------------------------
# pytest entry points
# ---------------------------------------------------------------------------
def test_sharded_output_equals_sequential():
    """Shard-merge determinism on the chapter-4 core workload."""
    tasks = chapter4_workload(n_tuples=min(N_TUPLES, 800), replicas=1)
    reference = run_sequential(tasks).canonical()
    for executor in ("serial", "thread", "process"):
        for shards in (2, 4):
            run = run_tasks(tasks, shards=shards, executor=executor)
            assert run.canonical() == reference, (executor, shards)


def test_speedup_at_4_shards():
    """>=1.5x throughput at 4 process shards vs. the sequential engine."""
    tasks = chapter4_workload()
    sequential_ms, reference = _timed(lambda: run_sequential(tasks))
    sharded_ms, run = _timed(lambda: run_tasks(tasks, shards=4, executor="process"))
    assert run.canonical() == reference.canonical()
    speedup = sequential_ms / sharded_ms
    print(
        f"\n4-shard speedup: {speedup:.2f}x "
        f"(sequential {sequential_ms:.0f} ms, sharded {sharded_ms:.0f} ms, "
        f"executor={run.executor})"
    )
    cpus = os.cpu_count() or 1
    if cpus < 4 or run.executor != "process":
        pytest.skip(
            f"no hardware parallelism to measure (cpus={cpus}, "
            f"executor={run.executor}); speedup was {speedup:.2f}x"
        )
    if os.environ.get("BENCH_RUNTIME_REQUIRE_SPEEDUP", "1") == "0":
        pytest.skip(f"speedup assertion disabled by env; measured {speedup:.2f}x")
    assert speedup >= 1.5, f"expected >=1.5x at 4 shards, measured {speedup:.2f}x"


# ---------------------------------------------------------------------------
# script mode
# ---------------------------------------------------------------------------
def main() -> int:
    tasks = chapter4_workload()
    total_inputs = sum(len(task.tuples) for task in tasks)
    print(
        f"chapter-4 core workload: {len(tasks)} group tasks, "
        f"{total_inputs} input tuples, {os.cpu_count()} CPUs"
    )
    sequential_ms, reference = _timed(lambda: run_sequential(tasks))
    canonical = reference.canonical()
    throughput = total_inputs / (sequential_ms / 1e3)
    print(f"{'shards':>7} {'executor':>9} {'wall ms':>9} {'speedup':>8} {'tuples/s':>10}")
    print(f"{'seq':>7} {'serial':>9} {sequential_ms:>9.0f} {1.0:>8.2f} {throughput:>10.0f}")
    rows = []
    for shards in SHARD_COUNTS:
        wall_ms, run = _timed(lambda: run_tasks(tasks, shards=shards, executor="process"))
        matches = run.canonical() == canonical
        speedup = sequential_ms / wall_ms
        throughput = total_inputs / (wall_ms / 1e3)
        flag = "" if matches else "  OUTPUT MISMATCH!"
        print(
            f"{shards:>7} {run.executor:>9} {wall_ms:>9.0f} "
            f"{speedup:>8.2f} {throughput:>10.0f}{flag}"
        )
        rows.append(
            {
                "size": total_inputs,
                "shards": shards,
                "wall_s": round(wall_ms / 1e3, 4),
                "speedup": round(speedup, 3),
                "platform": platform_info(),
            }
        )
        if not matches:
            return 1
    artifact = os.environ.get("BENCH_RUNTIME_JSON", "BENCH_runtime.json")
    if artifact:
        with open(artifact, "w", encoding="utf-8") as stream:
            json.dump(rows, stream, indent=2)
            stream.write("\n")
        print(f"trajectory written to {artifact}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
