"""Benchmarks regenerating Figures 4.15-4.18: slack, delta and group
size sweeps."""


def test_fig_4_15(run_experiment):
    """Figure 4.15: more slack -> lower output ratio (more sharing)."""
    report = run_experiment("fig_4_15", n_tuples=2000, repeats=2, seed=7)
    fractions = sorted(report.data)
    assert report.data[fractions[-1]] < report.data[fractions[0]]
    assert report.data[fractions[0]] > 0.9  # near-zero slack ~ no sharing


def test_fig_4_16(run_experiment):
    """Figure 4.16: the delta sweep stays within valid ratio bounds."""
    report = run_experiment("fig_4_16", n_tuples=2000, repeats=2, seed=7)
    for ratio in report.data.values():
        assert 0.0 < ratio <= 1.0


def test_fig_4_17(run_experiment):
    """Figure 4.17: bigger groups trend toward lower output ratios."""
    report = run_experiment("fig_4_17", n_tuples=1500, repeats=3, seed=7)
    sizes = sorted(report.data)
    small = report.data[sizes[0]]
    large = report.data[sizes[-1]]
    assert large <= small * 1.05  # downward (or at worst flat) trend


def test_fig_4_18(run_experiment):
    """Figure 4.18: CPU per batch grows with group size; GA > SI."""
    report = run_experiment("fig_4_18", n_tuples=1500, repeats=1, seed=7)
    sizes = sorted(report.data)
    assert (
        report.data[sizes[-1]]["group_aware"] > report.data[sizes[0]]["group_aware"]
    )
    for size in sizes:
        assert report.data[size]["group_aware"] >= report.data[size]["self_interested"]
