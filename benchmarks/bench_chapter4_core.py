"""Benchmarks regenerating Figures 4.2-4.8: O/I ratios, CPU cost and
latency for the three Chapter-4 filter groups."""

N_TUPLES = 2000
REPEATS = 5


def test_fig_4_2(run_experiment):
    """Figure 4.2: O/I ratios; GA must beat SI for every group."""
    report = run_experiment("fig_4_2", n_tuples=3000, seed=7)
    for group, ratios in report.data.items():
        for variant in ("RG", "RG+C", "PS", "PS+C"):
            assert ratios[variant] <= ratios["SI"], (group, variant)


def test_fig_4_3(run_experiment):
    """Figure 4.3: DC_Fluoro CPU cost per tuple (box plots)."""
    report = run_experiment("fig_4_3", n_tuples=N_TUPLES, repeats=REPEATS, seed=7)
    assert report.data["RG"]["median"] >= report.data["SI"]["median"]


def test_fig_4_4(run_experiment):
    """Figure 4.4: DC_Hybrid CPU cost per tuple."""
    report = run_experiment("fig_4_4", n_tuples=N_TUPLES, repeats=REPEATS, seed=7)
    assert report.data["PS"]["median"] >= report.data["SI"]["median"]


def test_fig_4_5(run_experiment):
    """Figure 4.5: DC_Tmpr CPU cost per tuple."""
    report = run_experiment("fig_4_5", n_tuples=N_TUPLES, repeats=REPEATS, seed=7)
    assert report.data["RG+C"]["median"] >= report.data["SI"]["median"]


def test_fig_4_6(run_experiment):
    """Figure 4.6: DC_Fluoro latency; batching makes GA slower than SI."""
    report = run_experiment("fig_4_6", n_tuples=N_TUPLES, repeats=REPEATS, seed=7)
    assert report.data["RG"]["median"] > report.data["SI"]["median"]


def test_fig_4_7(run_experiment):
    """Figure 4.7: DC_Hybrid latency."""
    report = run_experiment("fig_4_7", n_tuples=N_TUPLES, repeats=REPEATS, seed=7)
    assert report.data["PS"]["median"] > report.data["SI"]["median"]


def test_fig_4_8(run_experiment):
    """Figure 4.8: DC_Tmpr latency."""
    report = run_experiment("fig_4_8", n_tuples=N_TUPLES, repeats=REPEATS, seed=7)
    assert report.data["RG"]["median"] > report.data["SI"]["median"]
