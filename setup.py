"""Legacy setup shim.

All real metadata lives in ``pyproject.toml`` (PEP 621); CI and any
networked machine should use ``pip install -e .``.  This shim is kept
for offline machines whose pip cannot build-isolate (no ``wheel``
package, no index): there, ``python setup.py develop`` installs the
same src-layout package and console script from the pyproject metadata.
"""

from setuptools import setup

setup()
