"""Unit tests for the adaptive-control extensions (sections 4.8 / 6.2)."""

import pytest

from repro.adaptive import (
    AdaptiveController,
    SelectivityMonitor,
    cap_group_size,
    isolate_greedy_filters,
    partition_by_attribute,
    selectivity_from_result,
)
from repro.core.engine import SelfInterestedEngine
from repro.core.tuples import Trace
from repro.filters.delta import DeltaCompressionFilter
from repro.filters.multiattr import AveragedDeltaFilter
from tests.conftest import paper_group, random_walk_values


class TestSelectivityMonitor:
    def test_window_fraction(self):
        monitor = SelectivityMonitor(["a", "b"], window=4)
        monitor.observe({"a"})
        monitor.observe({"a", "b"})
        monitor.observe(set())
        assert monitor.selectivity("a") == pytest.approx(2 / 3)
        assert monitor.selectivity("b") == pytest.approx(1 / 3)

    def test_window_slides(self):
        monitor = SelectivityMonitor(["a"], window=2)
        monitor.observe({"a"})
        monitor.observe(set())
        monitor.observe(set())
        assert monitor.selectivity("a") == 0.0

    def test_greedy_filters(self):
        monitor = SelectivityMonitor(["hungry", "modest"], window=10)
        for _ in range(10):
            monitor.observe({"hungry"})
        assert monitor.greedy_filters(threshold=0.8) == ["hungry"]

    def test_empty_monitor_rejected(self):
        with pytest.raises(ValueError):
            SelectivityMonitor([])

    def test_bad_window_rejected(self):
        with pytest.raises(ValueError):
            SelectivityMonitor(["a"], window=0)

    def test_selectivity_from_result(self, paper_trace):
        result = SelfInterestedEngine(paper_group()).run(paper_trace)
        selectivity = selectivity_from_result(result)
        assert selectivity["A"] == pytest.approx(0.3)
        assert selectivity["C"] == pytest.approx(0.2)


class TestRegrouping:
    def test_isolate_greedy_filters(self):
        filters = paper_group()
        selectivity = {"A": 0.95, "B": 0.30, "C": 0.10}
        coordinated, isolated = isolate_greedy_filters(filters, selectivity)
        assert [f.name for f in isolated] == ["A"]
        assert [f.name for f in coordinated] == ["B", "C"]

    def test_isolate_nothing_when_modest(self):
        filters = paper_group()
        coordinated, isolated = isolate_greedy_filters(
            filters, {"A": 0.2, "B": 0.2, "C": 0.2}
        )
        assert isolated == []
        assert len(coordinated) == 3

    def test_partition_by_attribute_splits_disjoint(self):
        filters = [
            DeltaCompressionFilter("t1", "temp", 1, 0.4),
            DeltaCompressionFilter("t2", "temp", 2, 0.8),
            DeltaCompressionFilter("h1", "humidity", 1, 0.4),
        ]
        groups = partition_by_attribute(filters)
        names = sorted(sorted(f.name for f in group) for group in groups)
        assert names == [["h1"], ["t1", "t2"]]

    def test_partition_bridges_via_multiattr(self):
        filters = [
            DeltaCompressionFilter("t", "temp", 1, 0.4),
            DeltaCompressionFilter("h", "humidity", 1, 0.4),
            AveragedDeltaFilter("avg", ["temp", "humidity"], 1, 0.4),
        ]
        groups = partition_by_attribute(filters)
        assert len(groups) == 1  # the DC3 filter connects both attributes

    def test_cap_group_size(self):
        filters = paper_group()
        chunks = cap_group_size(filters, 2)
        assert [len(chunk) for chunk in chunks] == [2, 1]

    def test_cap_group_size_validates(self):
        with pytest.raises(ValueError):
            cap_group_size(paper_group(), 0)


class TestAdaptiveController:
    def _factory(self):
        return lambda: [
            DeltaCompressionFilter("A", "temp", 2.0, 1.0),
            DeltaCompressionFilter("B", "temp", 3.0, 1.5),
            DeltaCompressionFilter("C", "temp", 4.4, 2.0),
        ]

    def test_runs_all_windows(self):
        trace = Trace.from_values(
            random_walk_values(600, seed=1), attribute="temp", interval_ms=10
        )
        controller = AdaptiveController(self._factory(), window_size=200)
        outcome = controller.run(trace)
        assert len(outcome.windows) == 3
        assert outcome.total_output > 0

    def test_starts_group_aware(self):
        controller = AdaptiveController(self._factory())
        assert controller.mode == "group_aware"

    def test_disables_when_benefit_vanishes(self):
        """On a staircase trace the candidate sets are singletons, so
        group-awareness yields nothing and the controller backs off."""
        from repro.sources import step_trace

        trace = step_trace(n=600, step_every=20, step_height=10.0)

        def factory():
            return [
                DeltaCompressionFilter("A", "value", 10.0, 0.1),
                DeltaCompressionFilter("B", "value", 20.0, 0.1),
            ]

        controller = AdaptiveController(factory, window_size=150)
        outcome = controller.run(trace)
        assert any(w.mode == "self_interested" for w in outcome.windows)

    def test_hysteresis_validated(self):
        with pytest.raises(ValueError, match="hysteresis"):
            AdaptiveController(
                self._factory(), enable_threshold=0.05, disable_threshold=0.10
            )

    def test_window_size_validated(self):
        with pytest.raises(ValueError):
            AdaptiveController(self._factory(), window_size=0)

    def test_benefit_computation(self):
        from repro.adaptive.controller import WindowOutcome

        window = WindowOutcome(0, "group_aware", output_count=70, reference_count=100)
        assert window.benefit == pytest.approx(0.3)
        empty = WindowOutcome(0, "group_aware", output_count=0, reference_count=0)
        assert empty.benefit == 0.0

    def test_mode_switch_counter(self):
        from repro.adaptive.controller import AdaptiveOutcome, WindowOutcome

        outcome = AdaptiveOutcome(
            windows=[
                WindowOutcome(0, "group_aware", 1, 1),
                WindowOutcome(1, "self_interested", 1, 1),
                WindowOutcome(2, "self_interested", 1, 1),
                WindowOutcome(3, "group_aware", 1, 1),
            ]
        )
        assert outcome.mode_switches == 2
