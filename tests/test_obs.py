"""Tests for the telemetry subsystem: metrics, traces, events, endpoints.

Four layers:

* the dependency-free metric registry and its Prometheus text rendering
  (escaping, labels, histogram bucket math, relabel/merge helpers);
* deterministic trace sampling and the bounded TraceBag/EventLog;
* the ``/metrics`` and ``/events`` HTTP surfaces (including the 405 and
  oversized-request 400 paths);
* end-to-end stage tracing across a real gateway socket, and the
  cluster router's fleet merge with a dead worker mid-scrape.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.obs import (
    EventLog,
    MetricsRegistry,
    StageTracer,
    Telemetry,
    TraceBag,
    merge_expositions,
    platform_info,
    relabel_exposition,
    stage_id,
    stage_name,
)
from repro.obs.trace import (
    STAGE_BATCH_FLUSH,
    STAGE_DECIDE,
    STAGE_INGEST_RECV,
    STAGE_INGEST_SEND,
    STAGE_SESSION_QUEUE,
    STAGES,
)
from repro.runtime.tasks import EngineConfig
from repro.service import DisseminationService, ServiceConfig
from repro.sources import random_walk_trace
from repro.transport import GatewayClient, GatewayServer, SnapshotHTTP

#: Nearly every tuple is decided for delivery.
CHATTY_SPEC = "DC1(temp, 0.0001, 0.00005)"


def _service(telemetry=None, **overrides) -> DisseminationService:
    service = DisseminationService(
        ServiceConfig(
            engine=EngineConfig(algorithm="region"),
            batch_max_items=overrides.pop("batch_max_items", 1),
            **overrides,
        ),
        telemetry=telemetry,
    )
    service.add_source("src")
    return service


# ---------------------------------------------------------------------------
# Metric registry + text exposition
# ---------------------------------------------------------------------------
class TestMetricsRegistry:
    def test_counter_gauge_render(self):
        registry = MetricsRegistry()
        c = registry.counter("jobs_total", "Jobs processed.")
        c.inc()
        c.inc(2.5)
        g = registry.gauge("depth", "Queue depth.")
        g.set(4)
        g.inc()
        g.dec(2)
        text = registry.render()
        assert "# HELP jobs_total Jobs processed." in text
        assert "# TYPE jobs_total counter" in text
        assert "jobs_total 3.5" in text
        assert "# TYPE depth gauge" in text
        assert "depth 3" in text

    def test_registering_same_family_twice_returns_it(self):
        registry = MetricsRegistry()
        a = registry.counter("x_total", "X.")
        b = registry.counter("x_total", "X.")
        assert a is b
        with pytest.raises(ValueError):
            registry.gauge("x_total", "X as a gauge.")

    def test_labeled_children_and_value_sum(self):
        registry = MetricsRegistry()
        c = registry.counter("frames_total", "Frames.", ("dir", "codec"))
        c.labels("in", "json").inc(3)
        c.labels("out", "binary").inc(4)
        assert c.value == 7.0
        text = registry.render()
        assert 'frames_total{dir="in",codec="json"} 3' in text
        assert 'frames_total{dir="out",codec="binary"} 4' in text

    def test_unlabeled_family_rejects_missing_labels(self):
        registry = MetricsRegistry()
        c = registry.counter("tagged_total", "Tagged.", ("tag",))
        with pytest.raises(ValueError):
            c.inc()  # family declared with labels: no default child
        c.labels("a").inc()
        assert c.value == 1.0

    def test_label_value_escaping(self):
        registry = MetricsRegistry()
        g = registry.gauge("weird", "Weird labels.", ("name",))
        g.labels('sp"am\\eggs\nham').set(1)
        text = registry.render()
        assert 'weird{name="sp\\"am\\\\eggs\\nham"} 1' in text

    def test_gauge_high_water(self):
        registry = MetricsRegistry()
        g = registry.gauge("hw", "High water.")
        g.max(5)
        g.max(3)
        assert g.value == 5.0

    def test_histogram_buckets_cumulative(self):
        registry = MetricsRegistry()
        h = registry.histogram("lat_ms", "Latency.", buckets=(1.0, 10.0))
        for value in (0.5, 0.7, 5.0, 50.0):
            h.observe(value)
        text = registry.render()
        assert 'lat_ms_bucket{le="1"} 2' in text
        assert 'lat_ms_bucket{le="10"} 3' in text
        assert 'lat_ms_bucket{le="+Inf"} 4' in text
        assert "lat_ms_sum 56.2" in text
        assert "lat_ms_count 4" in text

    def test_collectors_run_at_render(self):
        registry = MetricsRegistry()
        g = registry.gauge("pool", "Pool size.")
        state = {"n": 0}
        registry.register_collector(lambda: g.set(state["n"]))
        state["n"] = 7
        assert "pool 7" in registry.render()

    def test_relabel_exposition(self):
        text = (
            "# HELP a_total A.\n"
            "# TYPE a_total counter\n"
            "a_total 3\n"
            'b_total{x="1"} 4\n'
        )
        out = relabel_exposition(text, {"worker": "2"})
        assert "# HELP a_total A." in out  # comments untouched
        assert 'a_total{worker="2"} 3' in out
        assert 'b_total{worker="2",x="1"} 4' in out

    def test_merge_expositions_dedupes_headers(self):
        part = (
            "# HELP a_total A.\n# TYPE a_total counter\n"
            'a_total{worker="%s"} 1\n'
        )
        merged = merge_expositions([part % 0, part % 1])
        assert merged.count("# HELP a_total A.") == 1
        assert merged.count("# TYPE a_total counter") == 1
        assert 'a_total{worker="0"} 1' in merged
        assert 'a_total{worker="1"} 1' in merged

    def test_platform_info_shape(self):
        info = platform_info()
        assert info["cpu_count"] >= 1
        assert isinstance(info["python"], str)
        json.dumps(info)  # JSON-ready


# ---------------------------------------------------------------------------
# Deterministic sampling + trace accumulation
# ---------------------------------------------------------------------------
class TestStageTracer:
    def test_processes_agree_without_coordination(self):
        a, b = StageTracer(16), StageTracer(16)
        decisions = [a.sampled("volcano", seq) for seq in range(4096)]
        assert decisions == [b.sampled("volcano", seq) for seq in range(4096)]
        rate = sum(decisions) / len(decisions)
        assert 0.25 / 16 < rate < 4.0 / 16  # roughly 1/period

    def test_distinct_sources_sample_distinct_seqs(self):
        tracer = StageTracer(64)
        a = {seq for seq in range(8192) if tracer.sampled("fire", seq)}
        b = {seq for seq in range(8192) if tracer.sampled("cow", seq)}
        assert a and b and a != b

    def test_period_edges(self):
        assert not StageTracer(0).enabled
        assert not StageTracer(0).sampled("s", 1)
        always = StageTracer(1)
        assert all(always.sampled("s", seq) for seq in range(64))
        with pytest.raises(ValueError):
            StageTracer(-1)

    def test_stage_ids_round_trip(self):
        for index, name in enumerate(STAGES):
            assert stage_id(name) == index
            assert stage_name(index) == name
        assert stage_name(len(STAGES)) is None  # id from a newer peer


class TestTraceBag:
    def test_stamp_measures_since_mark(self):
        bag = TraceBag()
        bag.begin(("s", 1), 1000)
        assert bag.stamp(("s", 1), 2, 1500) == 500
        assert bag.stamp(("s", 1), 4, 1800) == 300  # mark advanced
        assert bag.pop(("s", 1)) == [(2, 500), (4, 300)]
        assert bag.pop(("s", 1)) is None

    def test_since_mark_does_not_mutate(self):
        bag = TraceBag()
        bag.begin(("s", 2), 1000)
        assert bag.since_mark(("s", 2), 1400) == 400
        assert bag.since_mark(("s", 2), 1600) == 600  # same mark

    def test_carried_pairs_seed_the_entry(self):
        bag = TraceBag()
        bag.begin(("s", 3), 500, carried=[(0, 120)])
        bag.stamp(("s", 3), 2, 700)
        assert bag.pop(("s", 3)) == [(0, 120), (2, 200)]

    def test_capacity_evicts_oldest(self):
        bag = TraceBag(capacity=2)
        for seq in range(3):
            bag.begin(("s", seq), seq)
        assert ("s", 0) not in bag
        assert ("s", 2) in bag
        assert bag.evicted == 1

    def test_unknown_keys_are_noops(self):
        bag = TraceBag()
        assert bag.stamp(("s", 9), 1, 100) is None
        assert bag.since_mark(("s", 9), 100) is None
        bag.add(("s", 9), 1, 5)  # silently ignored
        assert bag.peek(("s", 9)) is None


class TestEventLog:
    def test_ids_strictly_increase_and_since_pages(self):
        log = EventLog()
        for i in range(5):
            log.emit("tick", n=i)
        ids = [e["id"] for e in log.since(0)]
        assert ids == [1, 2, 3, 4, 5]
        assert [e["id"] for e in log.since(3)] == [4, 5]
        assert [e["id"] for e in log.since(3, limit=1)] == [4]
        assert log.since(5) == []
        assert log.last_id == 5

    def test_eviction_keeps_cursors_valid(self):
        log = EventLog(capacity=3)
        for i in range(10):
            log.emit("tick", n=i)
        remaining = log.since(0)
        assert [e["id"] for e in remaining] == [8, 9, 10]
        # A reader holding an evicted cursor just misses the gap.
        assert [e["id"] for e in log.since(5)] == [8, 9, 10]

    def test_ingest_preserves_origin_and_adds_extra(self):
        worker, router = EventLog(), EventLog()
        worker.emit("worker_death", returncode=-9)
        router.emit("router_start")
        count = router.ingest(worker.since(0), worker=3)
        assert count == 1
        folded = router.since(0)[-1]
        assert folded["kind"] == "worker_death"
        assert folded["origin_id"] == 1
        assert folded["worker"] == 3
        assert folded["id"] == 2  # fresh local id

    def test_none_fields_dropped_and_jsonl_parses(self):
        log = EventLog()
        log.emit("spawn", pid=12, port=None)
        lines = log.to_jsonl().strip().splitlines()
        records = [json.loads(line) for line in lines]
        assert records[0]["kind"] == "spawn" and records[0]["pid"] == 12
        assert "port" not in records[0]


class TestTelemetryBundle:
    def test_stage_observation_lands_in_histogram(self):
        tele = Telemetry(sample_period=1)
        tele.observe_stage(STAGE_DECIDE, 2_000_000)  # 2 ms
        tele.record_stage_pairs([(stage_id(STAGE_INGEST_SEND), 500_000)])
        text = tele.registry.render()
        assert 'repro_stage_latency_ms_count{stage="decide"} 1' in text
        assert 'repro_stage_latency_ms_count{stage="ingest_send"} 1' in text

    def test_disabled_sampler(self):
        tele = Telemetry(sample_period=0)
        assert not tele.tracer.enabled


# ---------------------------------------------------------------------------
# HTTP surfaces
# ---------------------------------------------------------------------------
async def _http_raw(port: int, request: bytes) -> bytes:
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    writer.write(request)
    await writer.drain()
    raw = await reader.read()
    writer.close()
    return raw


async def _http_get(port: int, path: str) -> tuple[str, dict, bytes]:
    raw = await _http_raw(
        port, f"GET {path} HTTP/1.1\r\nHost: x\r\n\r\n".encode("ascii")
    )
    head, _, body = raw.partition(b"\r\n\r\n")
    lines = head.decode("latin-1").split("\r\n")
    headers = {}
    for line in lines[1:]:
        name, _, value = line.partition(":")
        headers[name.strip().lower()] = value.strip()
    return lines[0], headers, body


class TestObservabilityHTTP:
    def test_metrics_and_events_endpoints(self):
        async def run():
            tele = Telemetry(sample_period=4)
            service = _service(telemetry=tele)
            http = SnapshotHTTP(service, telemetry=tele)
            await http.start()
            await service.subscribe(
                "app0", "src", CHATTY_SPEC, queue_capacity=100
            )
            for item in random_walk_trace(n=20, seed=3, attribute="temp"):
                await service.offer("src", item)
            metrics = await _http_get(http.port, "/metrics")
            events_all = await _http_get(http.port, "/events")
            events_paged = await _http_get(http.port, "/events?since=1")
            await http.close()
            await service.close()
            return metrics, events_all, events_paged

        metrics, events_all, events_paged = asyncio.run(run())
        status, headers, body = metrics
        assert status == "HTTP/1.1 200 OK"
        assert headers["content-type"].startswith("text/plain")
        text = body.decode("utf-8")
        assert "repro_broker_offered_tuples_total 20" in text
        assert "# TYPE repro_broker_offered_tuples_total counter" in text
        assert "repro_broker_sessions 1" in text
        status, headers, body = events_all
        assert status == "HTTP/1.1 200 OK"
        assert headers["content-type"] == "application/x-ndjson"
        records = [json.loads(line) for line in body.decode().splitlines()]
        assert [r["id"] for r in records] == list(
            range(1, len(records) + 1)
        )
        assert records[0]["kind"] == "subscribe"
        assert records[0]["app"] == "app0"
        paged = [
            json.loads(line)
            for line in events_paged[2].decode().splitlines()
        ]
        assert [r["id"] for r in paged] == [r["id"] for r in records][1:]

    def test_disabled_telemetry_404s(self):
        async def run():
            service = _service()
            http = SnapshotHTTP(service)
            await http.start()
            metrics = await _http_get(http.port, "/metrics")
            events = await _http_get(http.port, "/events")
            await http.close()
            await service.close()
            return metrics, events

        metrics, events = asyncio.run(run())
        assert metrics[0] == "HTTP/1.1 404 Not Found"
        assert events[0] == "HTTP/1.1 404 Not Found"

    def test_non_get_gets_405(self):
        async def run():
            service = _service()
            http = SnapshotHTTP(service)
            await http.start()
            raw = await _http_raw(
                http.port, b"POST /metrics HTTP/1.1\r\nHost: x\r\n\r\n"
            )
            await http.close()
            await service.close()
            return raw

        raw = asyncio.run(run())
        assert raw.startswith(b"HTTP/1.1 405")

    def test_oversized_requests_get_400(self):
        async def run():
            service = _service()
            http = SnapshotHTTP(service)
            await http.start()
            declared = await _http_raw(
                http.port,
                b"GET /healthz HTTP/1.1\r\nContent-Length: 99999\r\n\r\n",
            )
            runaway = await _http_raw(
                http.port,
                b"GET /healthz HTTP/1.1\r\n"
                + b"X-Pad: " + b"y" * 9000 + b"\r\n\r\n",
            )
            await http.close()
            await service.close()
            return declared, runaway

        declared, runaway = asyncio.run(run())
        assert declared.startswith(b"HTTP/1.1 400")
        assert runaway.startswith(b"HTTP/1.1 400")


# ---------------------------------------------------------------------------
# End-to-end stage tracing across a real socket
# ---------------------------------------------------------------------------
class TestTracedGateway:
    def test_stage_chain_rides_the_wire(self):
        """Every sampled tuple's decided frame carries the full local
        stage decomposition, and both processes' histograms fill in."""
        trace = random_walk_trace(n=40, seed=3, attribute="temp")

        async def run():
            server_tele = Telemetry(sample_period=1)
            client_tele = Telemetry(sample_period=1)
            service = _service(telemetry=server_tele)
            gateway = GatewayServer(service, telemetry=server_tele)
            await gateway.start()
            client = await GatewayClient.connect(
                "127.0.0.1", gateway.port, telemetry=client_tele
            )
            sub = await client.subscribe(
                "app0", "src", CHATTY_SPEC, queue_capacity=10_000
            )
            chains: dict[int, list] = {}

            async def consume():
                async for batch in sub.batches():
                    for item in batch.items:
                        claimed = sub.claim_trace(item.seq)
                        if claimed is not None:
                            chains[item.seq] = claimed[0]

            consumer = asyncio.create_task(consume())
            for item in trace:
                await client.ingest("src", item)
            await service.close()
            await consumer
            await client.close()
            await gateway.shutdown()
            return chains, server_tele, client_tele

        chains, server_tele, client_tele = asyncio.run(run())
        assert chains, "no traces delivered"
        want = {
            stage_id(STAGE_INGEST_SEND),
            stage_id(STAGE_INGEST_RECV),
            stage_id(STAGE_DECIDE),
            stage_id(STAGE_BATCH_FLUSH),
            stage_id(STAGE_SESSION_QUEUE),
        }
        for seq, pairs in chains.items():
            stages = [sid for sid, _ in pairs]
            assert set(stages) >= want, (seq, pairs)
            assert all(dur >= 0 for _, dur in pairs), (seq, pairs)
        server_text = server_tele.registry.render()
        assert 'repro_stage_latency_ms_count{stage="decide"}' in server_text
        assert "repro_transport_frames_total" in server_text
        assert "repro_broker_offered_tuples_total 40" in server_text
        client_text = client_tele.registry.render()
        assert (
            'repro_stage_latency_ms_count{stage="ingest_send"}'
            in client_text
        )

    def test_untraced_peers_negotiate_nothing(self):
        """A telemetry-less client speaks the PR-5 wire shape untouched
        and a traced server must not send it trace fields."""
        trace = random_walk_trace(n=20, seed=3, attribute="temp")

        async def run():
            service = _service(telemetry=Telemetry(sample_period=1))
            gateway = GatewayServer(
                service, telemetry=service.telemetry
            )
            await gateway.start()
            client = await GatewayClient.connect("127.0.0.1", gateway.port)
            # The qos feature is offered unconditionally (it needs no
            # telemetry); what a telemetry-less client must NOT get is
            # the trace feature.
            assert "trace" not in client.features
            sub = await client.subscribe(
                "app0", "src", CHATTY_SPEC, queue_capacity=10_000
            )
            delivered: list[int] = []

            async def consume():
                async for batch in sub.batches():
                    delivered.extend(item.seq for item in batch.items)

            consumer = asyncio.create_task(consume())
            for item in trace:
                await client.ingest("src", item)
            await service.close()
            await consumer
            await client.close()
            await gateway.shutdown()
            return delivered, sub

        delivered, sub = asyncio.run(run())
        assert delivered
        assert sub.stage_traces == {}  # nothing rode the wire


# ---------------------------------------------------------------------------
# Cluster fleet merge (fake worker endpoints; no subprocesses)
# ---------------------------------------------------------------------------
class TestClusterObservabilityMerge:
    def test_metrics_merge_skips_dead_worker(self):
        from repro.service.cluster import ClusterConfig, ClusterService

        async def run():
            router_tele = Telemetry()
            cluster = ClusterService(
                ClusterConfig(workers=2, sources=("s0", "s1")),
                telemetry=router_tele,
            )
            # Worker 0 answers on a real (local) metrics endpoint;
            # worker 1 died mid-scrape (no reachable port).
            worker_tele = Telemetry()
            worker_tele.registry.counter(
                "repro_broker_offered_tuples_total", "Tuples."
            ).inc(11)
            worker_http = SnapshotHTTP(
                DisseminationService(), telemetry=worker_tele
            )
            await worker_http.start()
            cluster._workers[0].http_port = worker_http.port
            text = await cluster.metrics_text()
            await worker_http.close()
            return text

        text = asyncio.run(run())
        assert 'repro_cluster_worker_alive{worker="router",' in text
        assert (
            'repro_broker_offered_tuples_total{worker="0"} 11' in text
        )
        assert 'worker="1"' not in text.split("repro_broker_offered")[1]
        # One header block per family even though two expositions
        # contributed.
        assert text.count("# TYPE repro_broker_offered_tuples_total") == 1

    def test_event_folding_advances_cursor_and_skips_dead(self):
        from repro.service.cluster import ClusterConfig, ClusterService

        async def run():
            router_tele = Telemetry()
            # ttl=0: this test drives three back-to-back folds and wants
            # each to hit the worker, not the router's fold throttle.
            cluster = ClusterService(
                ClusterConfig(
                    workers=2, sources=("s0", "s1"), metrics_scrape_ttl_s=0.0
                ),
                telemetry=router_tele,
            )
            worker_tele = Telemetry()
            worker_tele.events.emit("overflow_disconnect", app="app7")
            worker_http = SnapshotHTTP(
                DisseminationService(), telemetry=worker_tele
            )
            await worker_http.start()
            cluster._workers[0].http_port = worker_http.port
            await cluster.pull_events()
            first = router_tele.events.since(0)
            await cluster.pull_events()  # cursor advanced: no duplicates
            second = router_tele.events.since(0)
            worker_tele.events.emit("worker_thing", n=2)
            await cluster.pull_events()
            third = router_tele.events.since(0)
            await worker_http.close()
            return first, second, third, cluster._workers[0].events_cursor

        first, second, third, cursor = asyncio.run(run())
        assert [e["kind"] for e in first] == ["overflow_disconnect"]
        assert first[0]["worker"] == 0
        assert first[0]["origin_id"] == 1
        assert second == first
        assert [e["kind"] for e in third] == [
            "overflow_disconnect",
            "worker_thing",
        ]
        assert cursor == 2
