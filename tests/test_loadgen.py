"""End-to-end tests for the load generator and its run manifests."""

from __future__ import annotations

import json

import pytest

from repro.service import ChurnEvent, LoadGenConfig, default_churn, run_loadgen
from repro.service.loadgen import _subscriber_specs, make_trace


def _config(**overrides) -> LoadGenConfig:
    base = dict(
        source="random_walk",
        size="tiny",
        rate=400.0,
        duration_s=0.5,
        seed=7,
        metrics_interval_s=0.1,
    )
    base.update(overrides)
    return LoadGenConfig(**base)


class TestArtifacts:
    def test_writes_metrics_and_summary(self, tmp_path):
        out = tmp_path / "run"
        summary = run_loadgen(_config(out_dir=str(out)))

        lines = (out / "metrics.jsonl").read_text().strip().splitlines()
        assert lines, "metrics.jsonl must not be empty"
        for line in lines:
            record = json.loads(line)
            assert "offered" in record and "session_count" in record

        manifest = json.loads((out / "summary.json").read_text())
        assert manifest["schema"] == "repro-loadgen/v1"
        assert manifest["clean_shutdown"] is True
        assert manifest["config"]["seed"] == 7
        assert manifest["offered"] > 0
        assert manifest == summary

    def test_open_loop_verify_matches_batch(self):
        summary = run_loadgen(_config(verify=True))
        assert summary["equivalent_to_batch"] is True
        assert summary["delivered_tuples"] > 0
        assert summary["dropped_tuples"] == 0

    def test_closed_loop_verify_matches_batch(self):
        summary = run_loadgen(_config(mode="closed", verify=True))
        assert summary["equivalent_to_batch"] is True

    def test_per_candidate_set_verify_matches_batch(self):
        summary = run_loadgen(_config(algorithm="per_candidate_set", verify=True))
        assert summary["equivalent_to_batch"] is True

    def test_verify_with_time_constraint_matches_batch(self):
        """The batch reference must run the same timely-cut constraint as
        the live service, or correct runs flag as non-equivalent."""
        summary = run_loadgen(
            _config(mode="closed", constraint_ms=60.0, verify=True)
        )
        assert summary["cuts_triggered"] > 0
        assert summary["equivalent_to_batch"] is True


class TestChurnSchedules:
    def test_default_churn_applies_and_completes(self):
        config = _config(duration_s=0.6, mode="closed")
        trace = make_trace(config)
        from dataclasses import replace

        config = replace(config, churn=default_churn(config, trace), verify=True)
        summary = run_loadgen(config)
        assert summary["clean_shutdown"] is True
        assert len(summary["churn_applied"]) == len(config.churn)
        apps = [app for app, _ in summary["final_subscriptions"]]
        assert "app-late" in apps
        assert "app1" not in apps  # unsubscribed by the schedule
        assert summary["regroups"] >= len(config.churn)
        assert summary["equivalent_to_batch"] is True  # superset check

    def test_custom_churn_validation(self):
        with pytest.raises(ValueError, match="needs a filter spec"):
            ChurnEvent(at_s=0.1, op="re_filter", app="app0")
        with pytest.raises(ValueError, match="unknown churn op"):
            ChurnEvent(at_s=0.1, op="explode", app="app0")


class TestBackpressureUnderLoad:
    def test_slow_consumer_drop_oldest_reports_drops(self):
        summary = run_loadgen(
            _config(
                rate=800.0,
                overflow="drop_oldest",
                queue_capacity=2,
                consumer_delay_ms=40.0,
            )
        )
        assert summary["dropped_tuples"] > 0
        assert summary["clean_shutdown"] is True

    def test_slow_consumer_block_never_drops(self):
        summary = run_loadgen(
            _config(
                rate=800.0,
                mode="closed",
                overflow="block",
                queue_capacity=2,
                consumer_delay_ms=5.0,
            )
        )
        assert summary["dropped_tuples"] == 0
        assert summary["clean_shutdown"] is True


class TestConfigValidation:
    def test_rejects_unknown_source(self):
        with pytest.raises(ValueError, match="unknown loadgen source"):
            _config(source="chlorine")

    def test_rejects_bad_size_and_mode(self):
        with pytest.raises(ValueError, match="unknown size"):
            _config(size="huge")
        with pytest.raises(ValueError, match="unknown mode"):
            _config(mode="sideways")

    def test_subscriber_specs_follow_size(self):
        for size, count in (("tiny", 2), ("small", 8)):
            config = _config(size=size)
            specs = _subscriber_specs(config, make_trace(config))
            assert len(specs) == count
