"""End-to-end tests for the load generator and its run manifests."""

from __future__ import annotations

import contextlib
import json

import pytest

from repro.service import ChurnEvent, LoadGenConfig, default_churn, run_loadgen
from repro.service.loadgen import _subscriber_specs, make_trace


def _config(**overrides) -> LoadGenConfig:
    base = dict(
        source="random_walk",
        size="tiny",
        rate=400.0,
        duration_s=0.5,
        seed=7,
        metrics_interval_s=0.1,
    )
    base.update(overrides)
    return LoadGenConfig(**base)


class TestArtifacts:
    def test_writes_metrics_and_summary(self, tmp_path):
        out = tmp_path / "run"
        summary = run_loadgen(_config(out_dir=str(out)))

        lines = (out / "metrics.jsonl").read_text().strip().splitlines()
        assert lines, "metrics.jsonl must not be empty"
        for line in lines:
            record = json.loads(line)
            assert "offered" in record and "session_count" in record

        manifest = json.loads((out / "summary.json").read_text())
        assert manifest["schema"] == "repro-loadgen/v1"
        assert manifest["clean_shutdown"] is True
        assert manifest["config"]["seed"] == 7
        assert manifest["offered"] > 0
        assert manifest == summary

    def test_open_loop_verify_matches_batch(self):
        summary = run_loadgen(_config(verify=True))
        assert summary["equivalent_to_batch"] is True
        assert summary["delivered_tuples"] > 0
        assert summary["dropped_tuples"] == 0

    def test_closed_loop_verify_matches_batch(self):
        summary = run_loadgen(_config(mode="closed", verify=True))
        assert summary["equivalent_to_batch"] is True

    def test_per_candidate_set_verify_matches_batch(self):
        summary = run_loadgen(_config(algorithm="per_candidate_set", verify=True))
        assert summary["equivalent_to_batch"] is True

    def test_verify_with_time_constraint_matches_batch(self):
        """The batch reference must run the same timely-cut constraint as
        the live service, or correct runs flag as non-equivalent."""
        summary = run_loadgen(
            _config(mode="closed", constraint_ms=60.0, verify=True)
        )
        assert summary["cuts_triggered"] > 0
        assert summary["equivalent_to_batch"] is True


class TestChurnSchedules:
    def test_default_churn_applies_and_completes(self):
        config = _config(duration_s=0.6, mode="closed")
        trace = make_trace(config)
        from dataclasses import replace

        config = replace(config, churn=default_churn(config, trace), verify=True)
        summary = run_loadgen(config)
        assert summary["clean_shutdown"] is True
        assert len(summary["churn_applied"]) == len(config.churn)
        apps = [app for app, _ in summary["final_subscriptions"]]
        assert "app-late" in apps
        assert "app1" not in apps  # unsubscribed by the schedule
        assert summary["regroups"] >= len(config.churn)
        assert summary["equivalent_to_batch"] is True  # superset check

    def test_custom_churn_validation(self):
        with pytest.raises(ValueError, match="needs a filter spec"):
            ChurnEvent(at_s=0.1, op="re_filter", app="app0")
        with pytest.raises(ValueError, match="unknown churn op"):
            ChurnEvent(at_s=0.1, op="explode", app="app0")


class TestBackpressureUnderLoad:
    def test_slow_consumer_drop_oldest_reports_drops(self):
        summary = run_loadgen(
            _config(
                rate=800.0,
                overflow="drop_oldest",
                queue_capacity=2,
                consumer_delay_ms=40.0,
            )
        )
        assert summary["dropped_tuples"] > 0
        assert summary["clean_shutdown"] is True

    def test_slow_consumer_block_never_drops(self):
        summary = run_loadgen(
            _config(
                rate=800.0,
                mode="closed",
                overflow="block",
                queue_capacity=2,
                consumer_delay_ms=5.0,
            )
        )
        assert summary["dropped_tuples"] == 0
        assert summary["clean_shutdown"] is True


@contextlib.contextmanager
def _external_gateway(on_stop: str = "shutdown"):
    """A GatewayServer on a background thread (its own event loop).

    Yields ``(port, stop)``; ``stop()`` asks the server to wind down —
    gracefully (``on_stop="shutdown"``) or by aborting every connection
    mid-flight (``on_stop="abort"``, the simulated server death).
    """
    import asyncio
    import threading

    from repro.runtime.tasks import EngineConfig
    from repro.service import DisseminationService, ServiceConfig
    from repro.transport import GatewayServer

    started = threading.Event()
    box: dict = {}

    def serve():
        async def main():
            service = DisseminationService(
                ServiceConfig(engine=EngineConfig(algorithm="region"))
            )
            gateway = GatewayServer(service)
            await gateway.start()
            box["port"] = gateway.port
            box["stop"] = asyncio.Event()
            box["loop"] = asyncio.get_running_loop()
            started.set()
            await box["stop"].wait()
            if on_stop == "abort":
                # Hard death: drop every connection, no goodbyes.
                for conn in list(gateway._connections):
                    conn.abort()
                gateway._server.close()
            else:
                await gateway.shutdown()

        asyncio.run(main())

    thread = threading.Thread(target=serve, daemon=True)
    thread.start()
    assert started.wait(10)

    def stop():
        try:
            box["loop"].call_soon_threadsafe(box["stop"].set)
        except RuntimeError:
            pass  # server loop already gone

    try:
        yield box["port"], stop
    finally:
        stop()
        thread.join(timeout=10)


class TestTcpTransport:
    """The same run loop driven across a real localhost socket."""

    @pytest.mark.parametrize("algorithm", ["region", "per_candidate_set"])
    def test_tcp_verify_matches_batch(self, algorithm):
        summary = run_loadgen(
            _config(transport="tcp", algorithm=algorithm, verify=True)
        )
        assert summary["equivalent_to_batch"] is True
        assert summary["clean_shutdown"] is True
        assert summary["delivered_tuples"] > 0

    def test_tcp_closed_loop_with_churn(self, tmp_path):
        from dataclasses import replace

        config = _config(transport="tcp", mode="closed", duration_s=0.6)
        config = replace(config, churn=default_churn(config), verify=True)
        summary = run_loadgen(config)
        assert summary["clean_shutdown"] is True
        assert len(summary["churn_applied"]) == len(config.churn)
        assert summary["equivalent_to_batch"] is True  # superset check

    def test_tcp_writes_artifacts(self, tmp_path):
        out = tmp_path / "tcp-run"
        summary = run_loadgen(_config(transport="tcp", out_dir=str(out)))
        assert summary["transport"] == "tcp"
        assert (out / "metrics.jsonl").read_text().strip()
        manifest = json.loads((out / "summary.json").read_text())
        assert manifest["config"]["transport"] == "tcp"

    def test_tcp_external_server_verify(self):
        """--connect mode: verification against delivered streams when
        the server's engines are out of reach."""
        with _external_gateway() as (port, _stop):
            summary = run_loadgen(
                _config(
                    transport="tcp",
                    connect=f"127.0.0.1:{port}",
                    mode="closed",
                    verify=True,
                )
            )
        assert summary["equivalent_to_batch"] is True
        assert summary["clean_shutdown"] is True
        assert summary["delivered_tuples"] > 0


    def test_tcp_server_dying_mid_run_degrades_to_error_summary(self):
        """A broker that vanishes mid-run yields a summary with recorded
        errors and clean_shutdown False — never a crash or leaked tasks."""
        import threading

        with _external_gateway(on_stop="abort") as (port, stop):
            killer = threading.Timer(0.5, stop)
            killer.start()
            try:
                summary = run_loadgen(
                    _config(
                        transport="tcp",
                        connect=f"127.0.0.1:{port}",
                        mode="closed",
                        duration_s=3.0,
                        rate=200.0,
                    )
                )
            finally:
                killer.cancel()
        assert summary["clean_shutdown"] is False
        assert summary["errors"], summary
        assert summary["offered"] > 0


class TestConfigValidation:
    def test_rejects_unknown_source(self):
        with pytest.raises(ValueError, match="unknown loadgen source"):
            _config(source="chlorine")

    def test_rejects_bad_size_and_mode(self):
        with pytest.raises(ValueError, match="unknown size"):
            _config(size="huge")
        with pytest.raises(ValueError, match="unknown mode"):
            _config(mode="sideways")

    def test_rejects_bad_transport_combinations(self):
        with pytest.raises(ValueError, match="unknown transport"):
            _config(transport="carrier-pigeon")
        with pytest.raises(ValueError, match="requires transport"):
            _config(connect="127.0.0.1:7787")
        with pytest.raises(ValueError, match="host:port"):
            _config(transport="tcp", connect="localhost")
        with pytest.raises(ValueError, match="host:port"):
            _config(transport="tcp", connect="127.0.0.1:")

    def test_subscriber_specs_follow_size(self):
        for size, count in (("tiny", 2), ("small", 8)):
            config = _config(size=size)
            specs = _subscriber_specs(config, make_trace(config))
            assert len(specs) == count


class TestMultiStream:
    def test_multi_source_inproc_verify(self):
        summary = run_loadgen(
            _config(mode="closed", sources=3, verify=True)
        )
        assert summary["equivalent_to_batch"] is True
        assert summary["clean_shutdown"] is True
        assert summary["source_streams"] == [
            "random_walk-0",
            "random_walk-1",
            "random_walk-2",
        ]
        # Each stream has its own subscriber set.
        apps = [app for app, _ in summary["final_subscriptions"]]
        assert len(apps) == len(set(apps)) == 3 * 2  # tiny = 2 per stream

    def test_multi_source_tcp_records_digests(self):
        summary = run_loadgen(
            _config(mode="closed", sources=2, transport="tcp", verify=True)
        )
        assert summary["equivalent_to_batch"] is True
        digest = summary["delivered_digest"]
        assert digest is not None and len(digest) == 4
        for entry in digest.values():
            assert entry["count"] >= 0 and len(entry["blake2s"]) == 32

    def test_adaptive_batching_records_trajectory(self):
        summary = run_loadgen(
            _config(mode="closed", transport="tcp", ingest_batch=8, verify=True)
        )
        assert summary["equivalent_to_batch"] is True
        assert summary["adaptive_batch"] is True
        trajectory = summary["ingest_batch_trajectory"]["random_walk"]
        assert trajectory[0] == [0, 1] or trajectory[0] == (0, 1)
        assert 1 <= summary["ingest_batch_final"]["random_walk"] <= 8
        # Back-to-back local acks are fast: the controller must have
        # grown past the floor at some point.
        assert any(size > 1 for _, size in trajectory)

    def test_fixed_batching_opt_out(self):
        summary = run_loadgen(
            _config(
                mode="closed",
                transport="tcp",
                ingest_batch=4,
                adaptive_batch=False,
                verify=True,
            )
        )
        assert summary["adaptive_batch"] is False
        assert summary["ingest_batch_trajectory"] is None
        assert summary["equivalent_to_batch"] is True

    def test_validation_rejects_bad_combinations(self):
        with pytest.raises(ValueError):
            _config(workers=2)  # cluster needs tcp
        with pytest.raises(ValueError):
            _config(workers=2, transport="tcp", connect="127.0.0.1:1")
        with pytest.raises(ValueError):
            _config(sources=0)
        with pytest.raises(ValueError):
            _config(
                sources=2,
                churn=(
                    ChurnEvent(at_s=0.1, op="unsubscribe", app="app0"),
                ),
            )
