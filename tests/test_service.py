"""Unit tests for the live dissemination service (broker layer)."""

from __future__ import annotations

import asyncio

import pytest

from repro.core.engine import GroupAwareEngine
from repro.core.tuples import StreamTuple, Trace
from repro.filters.spec import parse_filter
from repro.runtime.merge import canonical_result
from repro.runtime.tasks import EngineConfig
from repro.service import (
    Batch,
    DeliveryQueue,
    DisseminationService,
    MicroBatcher,
    ServiceConfig,
    SessionDisconnected,
    decided_map,
)
from repro.sources import random_walk_trace

SPECS = [
    ("app0", "DC1(temp, 2.0, 1.0)"),
    ("app1", "DC1(temp, 3.0, 1.5)"),
    ("app2", "DC1(temp, 4.4, 2.0)"),
]


def _trace(n=400, seed=3) -> Trace:
    return random_walk_trace(n=n, seed=seed, attribute="temp")


def _reference(algorithm: str, trace: Trace, specs=SPECS):
    filters = [parse_filter(spec, name=app) for app, spec in specs]
    return GroupAwareEngine(filters, algorithm=algorithm).run(trace)


async def _spin_up(algorithm="region", *, batch_max_items=1, **session_kwargs):
    service = DisseminationService(
        ServiceConfig(
            engine=EngineConfig(algorithm=algorithm),
            batch_max_items=batch_max_items,
        )
    )
    service.add_source("src")
    sessions = {}
    for app, spec in SPECS:
        sessions[app] = await service.subscribe(
            app, "src", spec, queue_capacity=10_000, **session_kwargs
        )
    return service, sessions


class TestBatchEquivalence:
    """Fixed trace + static subscriptions == the batch engine, bit for bit."""

    @pytest.mark.parametrize("algorithm", ["region", "per_candidate_set"])
    def test_decided_outputs_identical(self, algorithm):
        trace = _trace()

        async def run():
            service, sessions = await _spin_up(algorithm)
            await service.feed("src", trace)
            epochs = (await service.close())["src"]
            return epochs, sessions

        epochs, sessions = asyncio.run(run())
        assert len(epochs) == 1
        reference = _reference(algorithm, trace)
        assert canonical_result(epochs[0]) == canonical_result(reference)

    @pytest.mark.parametrize("algorithm", ["region", "per_candidate_set"])
    def test_sessions_receive_batch_outputs(self, algorithm):
        trace = _trace(seed=5)

        async def run():
            service, sessions = await _spin_up(algorithm)
            await service.feed("src", trace)
            await service.close()
            return {
                app: [
                    item.seq
                    for batch in session.queue.drain_nowait()
                    for item in batch.items
                ]
                for app, session in sessions.items()
            }

        delivered = asyncio.run(run())
        reference = _reference(algorithm, trace)
        for app, _ in SPECS:
            assert set(delivered[app]) == {
                t.seq for t in reference.outputs_for(app)
            }

    def test_ticks_do_not_change_decisions(self):
        trace = _trace(seed=8)

        async def run():
            service, _ = await _spin_up("region")
            for index, item in enumerate(trace):
                await service.offer("src", item)
                if index % 25 == 0:
                    # Tick ahead of the stream clock: may emit earlier,
                    # must never decide differently.
                    await service.tick(item.timestamp + 5.0)
            return (await service.close())["src"]

        epochs = asyncio.run(run())
        assert len(epochs) == 1
        assert decided_map(epochs[0]) == decided_map(_reference("region", trace))


class TestBackpressure:
    def test_block_policy_blocks_producer_until_consumed(self):
        async def run():
            queue = DeliveryQueue(capacity=1, policy="block")
            batch = Batch(items=(StreamTuple(0, 0.0, {"v": 1}),), first_staged_ms=0, flushed_ms=0)
            await queue.put(batch)
            producer = asyncio.create_task(queue.put(batch))
            await asyncio.sleep(0.01)
            assert not producer.done()  # backpressure: producer parked
            await queue.get()
            await asyncio.wait_for(producer, timeout=1.0)
            assert producer.done()

        asyncio.run(run())

    def test_drop_oldest_bounds_queue_and_counts_drops(self):
        trace = _trace(n=500, seed=2)

        async def run():
            service = DisseminationService(
                ServiceConfig(engine=EngineConfig(algorithm="region"), batch_max_items=1)
            )
            service.add_source("src")
            session = await service.subscribe(
                "app0", "src", "DC1(temp, 1.0, 0.5)",
                queue_capacity=4, overflow="drop_oldest",
            )
            max_depth = 0
            for item in trace:  # no consumer at all
                await service.offer("src", item)
                max_depth = max(max_depth, session.queue.depth)
            await service.close()
            snapshot = service.snapshot()
            return session, max_depth, snapshot

        session, max_depth, snapshot = asyncio.run(run())
        assert max_depth <= 4  # broker memory stays bounded
        assert session.stats.dropped_tuples > 0
        [session_snap] = snapshot.sessions
        assert session_snap.dropped_tuples == session.stats.dropped_tuples
        assert snapshot.dropped_tuples > 0

    def test_disconnect_policy_closes_and_unsubscribes(self):
        trace = _trace(n=500, seed=4)

        async def run():
            service, sessions = await _spin_up(
                "region", overflow="disconnect",
            )
            victim = sessions["app0"]
            # Shrink one session's queue after the fact is not possible;
            # re-subscribe it with a tiny queue instead.
            await service.unsubscribe("app0")
            victim = await service.subscribe(
                "app0", "src", dict(SPECS)["app0"],
                queue_capacity=1, overflow="disconnect",
            )
            for item in trace:
                await service.offer("src", item)
            snapshot = service.snapshot()
            await service.close()
            return victim, snapshot

        victim, snapshot = asyncio.run(run())
        assert victim.disconnected
        assert victim.queue.closed
        # The broker reaped the session: only two live sessions remain.
        assert snapshot.session_count == 2
        assert all(s.app_name != "app0" for s in snapshot.sessions)


class TestDynamicSubscriptions:
    def test_refilter_mid_stream_changes_outputs(self):
        trace = _trace(n=600, seed=9)

        async def run():
            service = DisseminationService(
                ServiceConfig(engine=EngineConfig(algorithm="region"), batch_max_items=1)
            )
            service.add_source("src")
            session = await service.subscribe(
                "app0", "src", "DC1(temp, 8.0, 4.0)", queue_capacity=10_000
            )
            for item in trace[:300]:
                await service.offer("src", item)
            before = session.stats.delivered_tuples + session.queue.depth
            await session.re_filter("DC1(temp, 0.5, 0.25)")  # much tighter
            for item in trace[300:]:
                await service.offer("src", item)
            epochs = (await service.close())["src"]
            return session, epochs

        session, epochs = asyncio.run(run())
        assert len(epochs) == 2  # one per subscription epoch
        assert session.spec == "DC1(temp, 0.5, 0.25)"
        # The tighter filter passes far more tuples in the second epoch.
        first, second = epochs
        assert len(second.decisions["app0"]) > len(first.decisions["app0"])

    def test_unsubscribed_app_receives_nothing_more(self):
        trace = _trace(n=400, seed=12)

        async def run():
            service, sessions = await _spin_up("region")
            for item in trace[:200]:
                await service.offer("src", item)
            await service.unsubscribe("app1")
            delivered_at_unsub = sessions["app1"].stats.enqueued_batches
            for item in trace[200:]:
                await service.offer("src", item)
            await service.close()
            return sessions["app1"], delivered_at_unsub, service

        session, delivered_at_unsub, service = asyncio.run(run())
        assert session.queue.closed
        assert session.stats.enqueued_batches == delivered_at_unsub
        assert service.subscriptions("src") == [
            (app, spec) for app, spec in SPECS if app != "app1"
        ]

    def test_subscribe_duplicate_app_rejected(self):
        async def run():
            service, _ = await _spin_up("region")
            with pytest.raises(ValueError, match="already subscribed"):
                await service.subscribe("app0", "src", "DC1(temp, 1.0, 0.5)")
            await service.close()

        asyncio.run(run())


class TestRegroupedSubgroups:
    def test_capped_groups_still_serve_all_sessions(self):
        trace = _trace(n=300, seed=6)

        async def run():
            service = DisseminationService(
                ServiceConfig(
                    engine=EngineConfig(algorithm="region"),
                    batch_max_items=1,
                    max_group_size=1,  # one engine per filter
                    shards=2,  # parallel subgroup decides
                )
            )
            service.add_source("src")
            sessions = {}
            for app, spec in SPECS:
                sessions[app] = await service.subscribe(
                    app, "src", spec, queue_capacity=10_000
                )
            await service.feed("src", trace)
            epochs = (await service.close())["src"]
            return sessions, epochs

        sessions, epochs = asyncio.run(run())
        assert len(epochs) == 3  # one engine per capped subgroup
        for app, spec in SPECS:
            # Isolated engines behave like singleton groups of the filter.
            solo = GroupAwareEngine(
                [parse_filter(spec, name=app)], algorithm="region"
            ).run(trace)
            delivered = {
                item.seq
                for batch in sessions[app].queue.drain_nowait()
                for item in batch.items
            }
            assert delivered == {t.seq for t in solo.outputs_for(app)}


class TestQueueAndBatcher:
    def test_disconnect_queue_raises_on_overflow(self):
        async def run():
            queue = DeliveryQueue(capacity=1, policy="disconnect")
            batch = Batch(items=(), first_staged_ms=0, flushed_ms=0)
            await queue.put(batch)
            with pytest.raises(SessionDisconnected):
                await queue.put(batch)

        asyncio.run(run())

    def test_batcher_size_bound(self):
        batcher = MicroBatcher(max_items=3, max_delay_ms=1e9)
        items = [StreamTuple(i, float(i), {"v": i}) for i in range(7)]
        flushed = [batcher.stage(item, item.timestamp) for item in items]
        batches = [b for b in flushed if b is not None]
        assert [len(b) for b in batches] == [3, 3]
        assert batcher.pending == 1
        tail = batcher.flush(99.0)
        assert tail is not None and len(tail) == 1

    def test_batcher_latency_bound(self):
        batcher = MicroBatcher(max_items=100, max_delay_ms=50.0)
        assert batcher.stage(StreamTuple(0, 0.0, {}), 0.0) is None
        assert not batcher.due(49.0)
        assert batcher.due(50.0)
        batch = batcher.flush(50.0)
        assert batch is not None
        assert batch.batching_delay_ms == 50.0

    def test_snapshot_serializes(self):
        async def run():
            service, _ = await _spin_up("region")
            await service.feed("src", _trace(n=50))
            snapshot = service.snapshot()
            await service.close()
            return snapshot

        snapshot = asyncio.run(run())
        payload = snapshot.to_dict()
        assert payload["session_count"] == 3
        assert payload["offered"] == 50
        assert isinstance(payload["sessions"], list)
        import json

        json.dumps(payload)  # must be JSON-serializable as-is


class TestReviewRegressions:
    def test_failed_subscribe_leaves_source_serving(self):
        """A rejected subscribe must not strand the source without engines."""
        trace = _trace(n=100, seed=13)

        async def run():
            service, sessions = await _spin_up("region")
            for item in trace[:50]:
                await service.offer("src", item)
            # app0 is grafted at its placed node; re-subscribing a new app
            # from a node the overlay does not know must fail cleanly.
            with pytest.raises(KeyError):
                await service.subscribe(
                    "newcomer", "src", "DC1(temp, 1.0, 0.5)", node="ghost-node"
                )
            for item in trace[50:]:
                await service.offer("src", item)
            epochs = (await service.close())["src"]
            return epochs

        epochs = asyncio.run(run())
        # The failed subscribe never cut the engine over: one epoch,
        # identical to the batch run.
        assert len(epochs) == 1
        reference = _reference("region", trace)
        assert canonical_result(epochs[0]) == canonical_result(reference)

    def test_invalid_session_override_leaves_source_serving(self):
        """Bad per-session knobs must fail before any churn, and a retry
        with valid knobs must not be refused as already subscribed."""
        trace = _trace(n=100, seed=17)

        async def run():
            service, sessions = await _spin_up("region")
            for item in trace[:50]:
                await service.offer("src", item)
            with pytest.raises(ValueError, match="capacity"):
                await service.subscribe(
                    "newcomer", "src", "DC1(temp, 1.0, 0.5)", queue_capacity=0
                )
            with pytest.raises(ValueError, match="overflow policy"):
                await service.subscribe(
                    "newcomer", "src", "DC1(temp, 1.0, 0.5)", overflow="explode"
                )
            for item in trace[50:]:
                await service.offer("src", item)
            # The retry must succeed: the failed attempts left no leaked
            # system subscription behind.
            await service.subscribe("newcomer", "src", "DC1(temp, 1.0, 0.5)")
            epochs = (await service.close())["src"]
            return epochs

        epochs = asyncio.run(run())
        # The failed subscribes never cut the engine over: the whole trace
        # lands in one epoch (closed by the successful retry), identical
        # to the batch run over the original subscription set.
        assert len(epochs) == 1
        reference = _reference("region", trace)
        assert canonical_result(epochs[0]) == canonical_result(reference)

    def test_partial_cutover_failure_records_no_phantom_epoch(self):
        """If one of several engine slots fails to finish mid-cutover, the
        epoch list must stay untouched — no epoch whose tail emissions
        were never routed — and the source must keep serving."""
        trace = _trace(n=120, seed=23)

        async def run():
            service = DisseminationService(
                ServiceConfig(engine=EngineConfig(algorithm="region"), max_group_size=1)
            )
            service.add_source("src")
            for app, spec in SPECS[:2]:
                await service.subscribe(app, "src", spec, queue_capacity=10_000)
            for item in trace[:60]:
                await service.offer("src", item)
            slots = service._sources["src"].slots
            assert len(slots) == 2
            slots[1].engine.finish = lambda: (_ for _ in ()).throw(
                RuntimeError("boom")
            )
            with pytest.raises(RuntimeError, match="boom"):
                await service.subscribe(
                    "newcomer", "src", "DC1(temp, 1.0, 0.5)", queue_capacity=10_000
                )
            epochs_after_failure = len(service.results("src"))
            # The rebuilt engines keep serving, and the retry succeeds.
            for item in trace[60:]:
                await service.offer("src", item)
            await service.subscribe(
                "newcomer", "src", "DC1(temp, 1.0, 0.5)", queue_capacity=10_000
            )
            epochs = (await service.close())["src"]
            return epochs_after_failure, epochs

        epochs_after_failure, epochs = asyncio.run(run())
        assert epochs_after_failure == 0
        # One epoch per slot from the successful retry's cutover (the
        # post-retry epoch is cut at close with nothing fed).
        assert len(epochs) == 2

    def test_failed_refilter_rolls_back_and_keeps_serving(self):
        """A cutover failure mid-re_filter must restore the old spec and
        leave the source with live engines, and a retry must succeed."""
        trace = _trace(n=80, seed=19)
        new_spec = "DC1(temp, 9.0, 4.5)"

        async def run():
            service, sessions = await _spin_up("region")
            for item in trace[:40]:
                await service.offer("src", item)
            # Inject a cutover failure: finishing the live engine raises.
            engine = service._sources["src"].slots[0].engine
            engine.finish = lambda: (_ for _ in ()).throw(RuntimeError("boom"))
            with pytest.raises(RuntimeError, match="boom"):
                await service.re_filter("app0", new_spec)
            specs_after_failure = dict(service.subscriptions("src"))
            # The rebuilt engines serve the rest of the trace...
            for item in trace[40:]:
                await service.offer("src", item)
            # ...and a retry (fresh engines, no injected fault) succeeds.
            await service.re_filter("app0", new_spec)
            specs_after_retry = dict(service.subscriptions("src"))
            await service.close()
            return specs_after_failure, specs_after_retry

        specs_after_failure, specs_after_retry = asyncio.run(run())
        assert specs_after_failure["app0"] == SPECS[0][1]
        assert specs_after_retry["app0"] == new_spec

    def test_bad_node_subscribe_leaves_no_multicast_residue(self):
        """A subscribe from an unknown node must not half-graft the app
        into the Scribe group; a later valid subscribe must succeed."""

        async def run():
            service = DisseminationService(ServiceConfig())
            service.add_source("src")
            with pytest.raises(KeyError):
                await service.subscribe(
                    "app0", "src", "DC1(temp, 2.0, 1.0)", node="ghost-node"
                )
            session = await service.subscribe("app0", "src", "DC1(temp, 2.0, 1.0)")
            await service.close()
            return session

        session = asyncio.run(run())
        assert session.app_name == "app0"

    def test_unsubscribe_flushes_staged_batch(self):
        """Detach must not vanish decided-but-staged tuples uncounted."""
        trace = _trace(n=300, seed=9)

        async def run():
            service, sessions = await _spin_up(
                "region", batch_max_items=10_000, batch_max_delay_ms=1e9
            )
            for item in trace[:150]:
                await service.offer("src", item)
            session = sessions["app0"]
            staged_before = session.batcher.pending
            await service.unsubscribe("app0")
            queued = sum(len(b) for b in session.queue.drain_nowait())
            await service.close()
            return session, staged_before, queued

        session, staged_before, queued = asyncio.run(run())
        assert staged_before > 0
        assert session.batcher.pending == 0
        # Every staged tuple is accounted for: enqueued toward the
        # consumer or counted as dropped — never silently lost.
        assert queued + session.stats.dropped_tuples == session.stats.staged_tuples

    def test_snapshot_shows_live_cuts(self):
        """Timely cuts must appear in snapshots before any cutover/close."""
        trace = _trace(n=300, seed=11)

        async def run():
            service = DisseminationService(
                ServiceConfig(
                    engine=EngineConfig(algorithm="region", constraint_ms=30.0)
                )
            )
            service.add_source("src")
            for app, spec in SPECS:
                await service.subscribe(app, "src", spec, queue_capacity=10_000)
            for item in trace:
                await service.offer("src", item)
            live = service.snapshot().cuts_triggered
            await service.close()
            return live, service.snapshot().cuts_triggered

        live, final = asyncio.run(run())
        assert live > 0
        assert live == final

    def test_tick_counts_once_across_sources(self):
        """One tick() call is one tick, however many sources it sweeps."""

        async def run():
            service = DisseminationService(ServiceConfig())
            service.add_source("a")
            service.add_source("b")
            await service.tick(100.0)
            snapshot = service.snapshot()
            await service.close()
            return snapshot

        snapshot = asyncio.run(run())
        assert snapshot.ticks == 1

    def test_retired_sessions_keep_their_counters(self):
        """Unsubscribed sessions' delivered/dropped stay in the totals."""
        trace = _trace(n=400, seed=21)

        async def run():
            service, sessions = await _spin_up("region")
            for item in trace[:200]:
                await service.offer("src", item)
            before = service.snapshot().delivered_tuples + sum(
                s.queue.depth for s in sessions.values()
            )
            await service.unsubscribe("app0")
            for item in trace[200:]:
                await service.offer("src", item)
            await service.close()
            return sessions["app0"], service.snapshot()

        session, snapshot = asyncio.run(run())
        assert session.stats.enqueued_batches > 0
        retired = [s for s in snapshot.retired if s.app_name == "app0"]
        assert len(retired) == 1
        assert retired[0].enqueued_batches == session.stats.enqueued_batches
        # Broker-wide totals include the retired session's contribution.
        live_delivered = sum(s.delivered_tuples for s in snapshot.sessions)
        assert snapshot.delivered_tuples == live_delivered + retired[0].delivered_tuples


class TestWallClockDecideLatency:
    def test_decide_latency_is_sub_tick_wall_clock(self):
        """Decide percentiles come from perf_counter_ns end to end, not
        from stream timestamps: a 10 ms-interval trace whose decides run
        in microseconds must NOT report p50 pinned at the tick size."""

        async def run():
            service = DisseminationService(ServiceConfig())
            service.add_source("src")
            await service.subscribe(
                "app0",
                "src",
                "DC1(value, 0.0001, 0.00005)",
                queue_capacity=10_000,
            )
            for seq in range(200):
                await service.offer(
                    "src",
                    StreamTuple(
                        seq=seq,
                        timestamp=float(seq) * 10.0,
                        values={"value": float(seq)},
                    ),
                )
            snapshot = service.snapshot()
            window = service.decide_window()
            await service.close()
            return snapshot, window

        snapshot, window = asyncio.run(run())
        assert window, "decides must populate the latency window"
        assert snapshot.decide_p99_ms >= snapshot.decide_p50_ms > 0.0
        # Same-process decides complete far inside one 10 ms tick; the
        # old stream-time measurement could not express that.
        assert snapshot.decide_p50_ms < 10.0
