"""Property tests: subscription churn driven across a real socket.

Mirrors ``tests/test_service_churn.py``, but every subscribe /
unsubscribe / re-filter and every offered tuple crosses the TCP gateway
through a :class:`~repro.transport.client.GatewayClient`.  The contract
is unchanged: whatever interleaving arrived at the final subscription
set, a subsequently fed trace decides exactly as a fresh batch engine
built from that set.
"""

from __future__ import annotations

import asyncio

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.engine import GroupAwareEngine
from repro.filters.spec import parse_filter
from repro.runtime.tasks import EngineConfig
from repro.service import DisseminationService, ServiceConfig, decided_map
from repro.sources import random_walk_trace
from repro.transport import GatewayClient, GatewayServer

APPS = ("a", "b", "c")
SPEC_CHOICES = (
    "DC1(temp, 1.5, 0.75)",
    "DC1(temp, 2.5, 1.25)",
    "DC2(temp, 0.8, 0.4)",
)

#: One churn event: (app index, spec index or None for unsubscribe).
events = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=len(APPS) - 1),
        st.one_of(
            st.none(), st.integers(min_value=0, max_value=len(SPEC_CHOICES) - 1)
        ),
    ),
    min_size=1,
    max_size=8,
)


async def _apply_churn_over_wire(client, ops) -> dict[str, str]:
    live: dict[str, str] = {}
    for app_index, spec_index in ops:
        app = APPS[app_index]
        if spec_index is None:
            if app in live:
                await client.unsubscribe(app)
                del live[app]
        else:
            spec = SPEC_CHOICES[spec_index]
            if app in live:
                await client.re_filter(app, spec)
            else:
                await client.subscribe(app, "src", spec, queue_capacity=10_000)
            live[app] = spec
    return live


@settings(max_examples=10, deadline=None)
@given(ops=events, algorithm=st.sampled_from(["region", "per_candidate_set"]))
def test_wire_churn_interleaving_equals_fresh_engine(ops, algorithm):
    trace = random_walk_trace(n=80, seed=42, attribute="temp")

    async def run():
        service = DisseminationService(
            ServiceConfig(
                engine=EngineConfig(algorithm=algorithm), batch_max_items=1
            )
        )
        service.add_source("src")
        gateway = GatewayServer(service)
        await gateway.start()
        client = await GatewayClient.connect("127.0.0.1", gateway.port)
        final = await _apply_churn_over_wire(client, ops)
        for item in trace:
            await client.ingest("src", item)
        subscriptions = service.subscriptions("src")
        epochs = (await service.close())["src"]
        await client.close()
        await gateway.shutdown()
        return subscriptions, final, epochs

    subscriptions, final, epochs = asyncio.run(run())
    assert dict(subscriptions) == final

    if not final:
        assert epochs == []
        return
    assert len(epochs) == 1  # churn before the feed -> one engine epoch
    filters = [parse_filter(spec, name=app) for app, spec in subscriptions]
    reference = GroupAwareEngine(filters, algorithm=algorithm).run(trace)
    assert decided_map(epochs[0]) == decided_map(reference)
