"""Property tests: shard-merge determinism (hypothesis).

The central guarantee of the sharded runtime is that partitioning a
workload by group key changes *where* engines run but never *what* they
decide: for any seeded synthetic workload and any shard count/executor,
the merged decided outputs and emissions equal the sequential run's.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.core.tuples import Trace
from repro.experiments.configs import dc_specs_from_statistics
from repro.runtime import (
    EngineConfig,
    GroupTask,
    run_sequential,
    run_tasks,
    shard_for_key,
)
from tests.conftest import random_walk_values

ALGORITHMS = ("region", "per_candidate_set", "self_interested")


def _workload(seed: int, n_groups: int, n_tuples: int) -> list[GroupTask]:
    """Seeded synthetic workload: one random-walk stream per group."""
    tasks = []
    for group in range(n_groups):
        trace = Trace.from_values(
            random_walk_values(n_tuples, seed=seed * 31 + group, scale=1.0),
            attribute="value",
        )
        specs = dc_specs_from_statistics(
            trace, "value", multipliers=[1.0 + 0.5 * group, 2.0]
        )
        config = EngineConfig(algorithm=ALGORITHMS[group % len(ALGORITHMS)])
        tasks.append(
            GroupTask.build(
                key=f"g{group}/seed{seed}", specs=specs, stream=trace, config=config
            )
        )
    return tasks


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    n_groups=st.integers(min_value=1, max_value=4),
    shards=st.integers(min_value=1, max_value=8),
    executor=st.sampled_from(["serial", "thread"]),
)
def test_sharded_output_equals_sequential(seed, n_groups, shards, executor):
    """Sharded and sequential runs emit identical decided outputs."""
    tasks = _workload(seed, n_groups, n_tuples=60)
    reference = run_sequential(tasks)
    run = run_tasks(tasks, shards=shards, executor=executor)
    assert run.canonical() == reference.canonical()
    # The merged view is consistent with the per-group results either way.
    assert run.combined.input_count == n_groups * 60
    assert run.combined.output_count == reference.combined.output_count


@settings(max_examples=25, deadline=None)
@given(
    key=st.text(min_size=0, max_size=40),
    shards=st.integers(min_value=1, max_value=64),
)
def test_shard_assignment_is_a_stable_function(key, shards):
    index = shard_for_key(key, shards)
    assert 0 <= index < shards
    assert index == shard_for_key(key, shards)


def test_process_executor_equals_sequential_on_seeded_workload():
    """One non-hypothesis process-pool check (pools are slow to spawn)."""
    tasks = _workload(seed=424242, n_groups=3, n_tuples=120)
    reference = run_sequential(tasks)
    run = run_tasks(tasks, shards=3, executor="process")
    assert run.canonical() == reference.canonical()
