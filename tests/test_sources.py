"""Unit tests for the synthetic data sources."""

import pytest

from repro.core.tuples import src_statistics
from repro.sources import (
    CATALOG,
    NAMOS_STATISTICS,
    chlorine_trace,
    cow_trace,
    fire_trace,
    namos_trace,
    ramp_trace,
    random_walk_trace,
    scale_to_statistics,
    sine_trace,
    step_trace,
    volcano_trace,
)


class TestNamos:
    def test_length_and_attributes(self):
        trace = namos_trace(n=500, seed=7)
        assert len(trace) == 500
        assert trace.attributes == sorted(NAMOS_STATISTICS)

    def test_statistics_match_targets(self):
        """The Table 4.1 recipe values must apply to this trace."""
        trace = namos_trace(n=2000, seed=7)
        for attribute, target in NAMOS_STATISTICS.items():
            assert src_statistics(trace, attribute) == pytest.approx(target, rel=1e-6)

    def test_deterministic(self):
        assert namos_trace(n=100, seed=7).column("tmpr4") == namos_trace(
            n=100, seed=7
        ).column("tmpr4")

    def test_seed_changes_trace(self):
        assert namos_trace(n=100, seed=7).column("tmpr4") != namos_trace(
            n=100, seed=8
        ).column("tmpr4")

    def test_ten_ms_spacing(self):
        trace = namos_trace(n=10, seed=7)
        gaps = [b.timestamp - a.timestamp for a, b in zip(trace, trace[1:])]
        assert all(gap == pytest.approx(10.0) for gap in gaps)


class TestShapes:
    def test_cow_range_plausible(self):
        trace = cow_trace(n=1000, seed=11)
        column = trace.column("E-orient")
        assert 700 < min(column) and max(column) < 950

    def test_volcano_near_zero(self):
        trace = volcano_trace(n=1000, seed=13)
        column = trace.column("seis")
        assert max(abs(v) for v in column) < 0.2

    def test_fire_curve(self):
        trace = fire_trace(n=1000, seed=17)
        column = trace.column("HRR")
        peak_index = column.index(max(column))
        # Peaks during growth/plateau, not in the first tenth.
        assert peak_index > len(column) // 10
        assert max(column) > 3.0

    def test_chlorine_nonnegative_multistation(self):
        trace = chlorine_trace(n=500, seed=23)
        assert set(trace.attributes) == {"cl_near", "cl_mid", "cl_far"}
        for attribute in trace.attributes:
            assert min(trace.column(attribute)) >= 0.0

    def test_chlorine_has_signal(self):
        trace = chlorine_trace(n=1500, seed=23)
        assert max(trace.column("cl_near")) > 0.0


class TestGenericSources:
    def test_random_walk_deterministic(self):
        assert random_walk_trace(n=50, seed=1).column("value") == random_walk_trace(
            n=50, seed=1
        ).column("value")

    def test_sine_period(self):
        trace = sine_trace(n=200, period=100, amplitude=5.0)
        column = trace.column("value")
        assert column[0] == pytest.approx(column[100], abs=1e-9)

    def test_step_heights(self):
        trace = step_trace(n=30, step_every=10, step_height=2.0)
        assert trace.column("value")[:11] == [0.0] * 10 + [2.0]

    def test_ramp_slope(self):
        trace = ramp_trace(n=5, slope=2.0)
        assert trace.column("value") == [0.0, 2.0, 4.0, 6.0, 8.0]


class TestScaleToStatistics:
    def test_scales_exactly(self):
        values = [0.0, 1.0, 3.0, 2.0]
        scaled = scale_to_statistics(values, 0.5)
        stat = sum(abs(b - a) for a, b in zip(scaled, scaled[1:])) / 3
        assert stat == pytest.approx(0.5)

    def test_preserves_anchor(self):
        values = [10.0, 11.0, 12.0]
        scaled = scale_to_statistics(values, 5.0)
        assert scaled[0] == 10.0

    def test_constant_series_rejected(self):
        with pytest.raises(ValueError, match="constant"):
            scale_to_statistics([1.0, 1.0], 0.5)

    def test_too_short_rejected(self):
        with pytest.raises(ValueError):
            scale_to_statistics([1.0], 0.5)


class TestCatalog:
    def test_all_sources_registered(self):
        expected = {
            "namos", "cow", "volcano", "fire", "chlorine",
            "random_walk", "sine", "step", "ramp",
        }
        assert expected <= set(CATALOG.names())

    def test_make(self):
        trace = CATALOG.make("cow", n=50, seed=1)
        assert len(trace) == 50

    def test_unknown_source(self):
        with pytest.raises(KeyError, match="available"):
            CATALOG.make("nope")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError):
            CATALOG.register("cow", cow_trace)
