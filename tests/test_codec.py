"""Tests for the binary wire codec: golden bytes, negotiation, fan-out.

Three layers of assurance:

* **golden bytes** — both codecs' hot frames serialize to exact,
  hand-derived byte strings (the wire format is a contract, not an
  implementation detail) and round-trip through the sans-io decoder;
* **negotiation** — the hello/welcome handshake agrees on a codec, old
  peers fall back to JSON transparently, and either codec carries the
  full live pipeline;
* **cross-codec equivalence** — a verified loadgen run is
  batch-equivalent under ``json`` and ``binary`` for both decide
  algorithms, and the delivered streams are identical tuple for tuple.
"""

from __future__ import annotations

import asyncio
import struct

import pytest

from repro.core.tuples import StreamTuple
from repro.service import (
    Batch,
    DisseminationService,
    LoadGenConfig,
    ServiceConfig,
    run_loadgen,
)
from repro.transport import (
    BinaryEncoder,
    FrameDecoder,
    FrameTooLarge,
    GatewayClient,
    GatewayServer,
    JsonEncoder,
    NameTable,
    ProtocolError,
    SegmentCache,
    batch_from_wire,
    encode_frame,
    negotiate,
    pack_header,
)
from repro.transport.protocol import PROTOCOL_VERSION


def _item(seq=7, ts=120.0, **values) -> StreamTuple:
    return StreamTuple(seq=seq, timestamp=ts, values=values or {"temp": 21.5})


def _decode_body(body: bytes, decoder: FrameDecoder | None = None) -> dict:
    decoder = decoder or FrameDecoder()
    frames = decoder.feed(pack_header(len(body)) + body)
    assert len(frames) == 1
    return frames[0]


# ---------------------------------------------------------------------------
# Golden bytes
# ---------------------------------------------------------------------------
class TestGoldenBytes:
    def test_json_frame_exact_bytes(self):
        frame = {"t": "tick", "now_ms": 5.0, "seq": 1}
        expected = b'{"t":"tick","now_ms":5.0,"seq":1}'
        assert encode_frame(frame) == struct.pack(">I", len(expected)) + expected

    def test_json_ingest_body_exact_bytes(self):
        body = JsonEncoder().ingest_body(
            "src", _item(seq=3, ts=30.0, temp=1.5), seq=9
        )
        assert body == (
            b'{"t":"ingest","source":"src",'
            b'"tuple":{"seq":3,"ts":30.0,"values":{"temp":1.5}},"seq":9}'
        )

    def test_binary_ingest_body_exact_bytes(self):
        encoder = BinaryEncoder()
        body = encoder.ingest_body("src", _item(seq=3, ts=30.0, temp=1.5), seq=9)
        expected = (
            b"\x01"  # tag: ingest
            b"\x0a"  # request seq 9 encoded as varint(9+1)
            b"\x03src"  # source
            b"\x00"  # pad length 0
            b"\x01\x00\x04temp"  # names delta: 1 entry, id 0 -> "temp"
            b"\x03"  # tuple seq 3
            + struct.pack("<d", 30.0)
            + b"\x01"  # one attribute
            b"\x00"  # name id 0
            + struct.pack("<d", 1.5)
        )
        assert body == expected

    def test_binary_second_frame_omits_announced_names(self):
        encoder = BinaryEncoder()
        first = encoder.ingest_body("src", _item(seq=1, ts=10.0, temp=1.0))
        second = encoder.ingest_body("src", _item(seq=2, ts=20.0, temp=2.0))
        assert b"temp" in first
        assert b"temp" not in second  # the id alone is on the wire now
        decoder = FrameDecoder()
        one = _decode_body(first, decoder)
        two = _decode_body(second, decoder)
        assert one["tuple"].values == {"temp": 1.0}
        assert two["tuple"].values == {"temp": 2.0}

    def test_binary_roundtrip_multi_attribute(self):
        encoder = BinaryEncoder()
        item = _item(seq=12345, ts=99.5, temp=21.5, humidity=0.33)
        frame = _decode_body(encoder.ingest_body("src", item, pad_bytes=11))
        assert frame["t"] == "ingest"
        assert frame["source"] == "src"
        decoded = frame["tuple"]
        assert isinstance(decoded, StreamTuple)
        assert decoded.seq == 12345
        assert decoded.timestamp == 99.5
        assert decoded.values == {"temp": 21.5, "humidity": 0.33}
        assert "seq" not in frame  # no request seq was attached

    def test_binary_ingest_batch_roundtrip(self):
        encoder = BinaryEncoder()
        items = [_item(seq=i, ts=10.0 * (i + 1), temp=float(i)) for i in range(5)]
        frame = _decode_body(
            encoder.ingest_batch_body("s1", items, seq=4, pad_bytes=3)
        )
        assert frame["t"] == "ingest_batch"
        assert frame["seq"] == 4
        assert [t.seq for t in frame["tuples"]] == [0, 1, 2, 3, 4]
        assert [t.values["temp"] for t in frame["tuples"]] == [0.0, 1.0, 2.0, 3.0, 4.0]

    def test_decided_pieces_roundtrip_both_codecs(self):
        batch = Batch(
            items=tuple(
                _item(seq=i, ts=10.0 * (i + 1), temp=1.0 + i) for i in range(3)
            ),
            first_staged_ms=10.0,
            flushed_ms=30.0,
        )
        for encoder in (JsonEncoder(), BinaryEncoder()):
            pieces, total = encoder.decided_pieces(
                "app0", batch, max_frame_bytes=1 << 20
            )
            body = b"".join(pieces)
            assert len(body) == total
            frame = _decode_body(body)
            assert frame["t"] == "decided"
            assert frame["app"] == "app0"
            assert frame["first_staged_ms"] == 10.0
            assert frame["flushed_ms"] == 30.0
            decoded = batch_from_wire(frame)
            assert [t.seq for t in decoded.items] == [0, 1, 2]
            assert [t.values["temp"] for t in decoded.items] == [1.0, 2.0, 3.0]

    def test_unknown_binary_tag_rejected(self):
        with pytest.raises(ProtocolError):
            _decode_body(b"\x7f\x00\x00")

    def test_truncated_binary_body_rejected(self):
        encoder = BinaryEncoder()
        body = encoder.ingest_body("src", _item())
        with pytest.raises(ProtocolError):
            _decode_body(body[:-3])

    def test_unannounced_name_id_rejected(self):
        # A fresh decoder never saw the names delta of a previous
        # connection; referencing the id must fail loudly.
        encoder = BinaryEncoder()
        encoder.ingest_body("src", _item())  # announces "temp"
        second = encoder.ingest_body("src", _item(seq=8))
        with pytest.raises(ProtocolError):
            _decode_body(second, FrameDecoder())

    def test_json_and_binary_interleave_on_one_decoder(self):
        encoder = BinaryEncoder()
        binary = encoder.ingest_body("src", _item())
        json_frame = encode_frame({"t": "tick", "now_ms": 1.0})
        decoder = FrameDecoder()
        frames = decoder.feed(
            pack_header(len(binary)) + binary + json_frame
        )
        assert [f["t"] for f in frames] == ["ingest", "tick"]


# ---------------------------------------------------------------------------
# Encode-once machinery
# ---------------------------------------------------------------------------
class TestEncodeOnce:
    def test_segment_cache_keys_on_identity(self):
        # Two sources may reuse the same seq; equality is seq-only, so
        # the cache must not serve one source's bytes for the other's.
        cache = SegmentCache(capacity=8)
        encoder = BinaryEncoder(cache=cache)
        a = StreamTuple(seq=1, timestamp=1.0, values={"x": 1.0})
        b = StreamTuple(seq=1, timestamp=1.0, values={"x": 2.0})
        seg_a = encoder.tuple_segment(a)
        seg_b = encoder.tuple_segment(b)
        assert seg_a.data != seg_b.data
        assert encoder.tuple_segment(a) is seg_a  # hit
        assert cache.hits == 1

    def test_segment_cache_lru_eviction(self):
        cache = SegmentCache(capacity=2)
        encoder = JsonEncoder(cache=cache)
        items = [_item(seq=i) for i in range(3)]
        segments = [encoder.tuple_segment(item) for item in items]
        assert len(cache) == 2
        # items[0] was evicted; re-encoding produces a fresh segment.
        assert encoder.tuple_segment(items[0]) is not segments[0]

    def test_shared_fanout_reuses_segments_across_batches(self):
        table, cache = NameTable(), SegmentCache()
        first_conn = BinaryEncoder(table=table, cache=cache)
        second_conn = BinaryEncoder(table=table, cache=cache)
        item = _item(seq=5, ts=50.0)
        batch = Batch(items=(item,), first_staged_ms=50.0, flushed_ms=50.0)
        pieces_a, _ = first_conn.decided_pieces(
            "a", batch, max_frame_bytes=1 << 20
        )
        pieces_b, _ = second_conn.decided_pieces(
            "b", batch, max_frame_bytes=1 << 20
        )
        # The tuple segment bytes are the same object on both
        # connections — encoded once, fanned out by reference.
        assert pieces_a[-1] is pieces_b[-1]
        assert cache.hits >= 1

    def test_oversized_ingest_does_not_commit_names(self):
        # A client-side FrameTooLarge must not desync the connection's
        # announced-id state: the refused frame never reached the
        # server, so the next frame has to carry the names delta again.
        encoder = BinaryEncoder()
        with pytest.raises(FrameTooLarge):
            encoder.ingest_body("src", _item(), pad_bytes=256, max_frame_bytes=64)
        with pytest.raises(FrameTooLarge):
            encoder.ingest_batch_body(
                "src", [_item(seq=i) for i in range(9)], max_frame_bytes=32
            )
        frame = _decode_body(
            encoder.ingest_body("src", _item(), max_frame_bytes=1 << 20)
        )
        assert frame["tuple"].values == {"temp": 21.5}

    def test_oversized_ingest_many_leaves_connection_usable(self):
        async def run():
            service = DisseminationService()
            service.add_source("src")
            server = GatewayServer(service)
            await server.start()
            client = await GatewayClient.connect("127.0.0.1", server.port)
            items = [_item(seq=i, ts=10.0 * (i + 1)) for i in range(4)]
            with pytest.raises(FrameTooLarge):
                await client.ingest_many(
                    "src", items, pad_bytes=2 * 1024 * 1024
                )
            # The refused frame must not have poisoned the name table:
            # a normal ingest on the same connection still decodes.
            emissions = await client.ingest("src", items[0])
            await client.close()
            await server.shutdown()
            return emissions

        assert asyncio.run(run()) is not None

    def test_oversized_decided_does_not_commit_names(self):
        encoder = BinaryEncoder()
        item = _item(seq=1, ts=1.0)
        batch = Batch(items=(item,), first_staged_ms=1.0, flushed_ms=1.0)
        with pytest.raises(FrameTooLarge):
            encoder.decided_pieces("app", batch, max_frame_bytes=8)
        # The refused frame never reached the peer: the next (fitting)
        # frame must still carry the names delta.
        pieces, _ = encoder.decided_pieces(
            "app", batch, max_frame_bytes=1 << 20
        )
        assert b"temp" in b"".join(pieces)


# ---------------------------------------------------------------------------
# Negotiation
# ---------------------------------------------------------------------------
class TestNegotiation:
    def test_negotiate_prefers_first_supported(self):
        assert negotiate(["binary", "json"]) == "binary"
        assert negotiate(["json", "binary"]) == "json"
        assert negotiate(None) == "json"
        assert negotiate([]) == "json"
        assert negotiate(["zstd", "binary"]) == "binary"
        assert negotiate(["zstd"]) == "json"
        assert negotiate(["binary"], supported=("json",)) == "json"

    def _pipeline(self, *, server_codecs=None, client_codec="binary"):
        async def run():
            service = DisseminationService(ServiceConfig(batch_max_items=4))
            service.add_source("src")
            kwargs = {} if server_codecs is None else {"codecs": server_codecs}
            server = GatewayServer(service, **kwargs)
            await server.start()
            client = await GatewayClient.connect(
                "127.0.0.1", server.port, codec=client_codec
            )
            sub = await client.subscribe(
                "app", "src", "DC1(temp, 0.001, 0.0005)"
            )
            delivered: list[int] = []

            async def consume():
                async for batch in sub.batches():
                    delivered.extend(t.seq for t in batch.items)

            task = asyncio.create_task(consume())
            for i in range(12):
                await client.ingest(
                    "src",
                    StreamTuple(
                        seq=i, timestamp=10.0 * (i + 1), values={"temp": float(i)}
                    ),
                )
            await client.tick(1000.0)
            await asyncio.sleep(0.05)
            await client.unsubscribe("app")
            await task
            negotiated = client.codec
            await client.close()
            await server.shutdown()
            return negotiated, delivered

        return asyncio.run(run())

    def test_binary_negotiated_end_to_end(self):
        negotiated, delivered = self._pipeline()
        assert negotiated == "binary"
        assert delivered  # decided tuples crossed the wire in binary

    def test_json_only_server_falls_back(self):
        negotiated, delivered = self._pipeline(server_codecs=("json",))
        assert negotiated == "json"
        assert delivered

    def test_client_may_insist_on_json(self):
        negotiated, delivered = self._pipeline(client_codec="json")
        assert negotiated == "json"
        assert delivered

    def test_v1_hello_without_codecs_gets_json(self):
        async def run():
            service = DisseminationService()
            service.add_source("src")
            server = GatewayServer(service)
            await server.start()
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", server.port
            )
            writer.write(
                encode_frame({"t": "hello", "v": PROTOCOL_VERSION, "seq": 1})
            )
            await writer.drain()
            decoder = FrameDecoder()
            frames: list[dict] = []
            while not frames:
                frames = decoder.feed(await reader.read(1 << 16))
            writer.close()
            await writer.wait_closed()
            await server.shutdown()
            return frames[0]

        welcome = asyncio.run(run())
        assert welcome["t"] == "welcome"
        assert welcome["codec"] == "json"


# ---------------------------------------------------------------------------
# Cross-codec equivalence
# ---------------------------------------------------------------------------
class TestCrossCodecEquivalence:
    @pytest.mark.parametrize("algorithm", ["region", "per_candidate_set"])
    def test_verify_passes_and_streams_match(self, algorithm):
        def summary(codec: str) -> dict:
            return run_loadgen(
                LoadGenConfig(
                    rate=400.0,
                    duration_s=1.0,
                    size="tiny",
                    mode="closed",
                    algorithm=algorithm,
                    transport="tcp",
                    codec=codec,
                    ingest_batch=4,
                    verify=True,
                )
            )

        by_codec = {codec: summary(codec) for codec in ("json", "binary")}
        for codec, result in by_codec.items():
            assert result["codec"] == codec, result
            assert result["clean_shutdown"] is True, (codec, result)
            assert result["equivalent_to_batch"] is True, (codec, result)
        # Byte-identical decided outputs: both codecs, same trace, same
        # schedule — the delivered totals must agree exactly.
        assert (
            by_codec["json"]["delivered_tuples"]
            == by_codec["binary"]["delivered_tuples"]
        )
        assert (
            by_codec["json"]["decided_emissions"]
            == by_codec["binary"]["decided_emissions"]
        )


# ---------------------------------------------------------------------------
# Batched ingest
# ---------------------------------------------------------------------------
class TestBatchedIngest:
    def test_offer_many_matches_sequential_offers(self):
        from repro.service import decided_map

        items = [
            StreamTuple(seq=i, timestamp=10.0 * (i + 1), values={"temp": float(i % 5)})
            for i in range(40)
        ]

        async def run(batched: bool):
            service = DisseminationService(ServiceConfig(batch_max_items=4))
            service.add_source("src")
            session = await service.subscribe("app", "src", "DC1(temp, 2.0, 1.0)")

            async def drain():
                async for _ in session.batches():
                    pass

            task = asyncio.create_task(drain())
            if batched:
                for start in range(0, len(items), 7):
                    await service.offer_many("src", items[start : start + 7])
            else:
                for item in items:
                    await service.offer("src", item)
            epochs = (await service.close())["src"]
            await task
            return [decided_map(epoch) for epoch in epochs]

        assert asyncio.run(run(True)) == asyncio.run(run(False))

    def test_loadgen_ingest_batch_verifies_inproc(self):
        summary = run_loadgen(
            LoadGenConfig(
                rate=400.0,
                duration_s=1.0,
                size="tiny",
                mode="closed",
                ingest_batch=8,
                verify=True,
            )
        )
        assert summary["equivalent_to_batch"] is True, summary
        assert summary["clean_shutdown"] is True, summary
