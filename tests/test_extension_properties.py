"""Property-based tests for the extension filters and punctuations."""

import math

from hypothesis import given, settings, strategies as st

from repro.core.engine import GroupAwareEngine, SelfInterestedEngine
from repro.core.output import PerCandidateSetOutput
from repro.core.punctuation import OrderingBuffer, measure_disorder
from repro.core.tuples import Trace
from repro.filters.delta import DeltaCompressionFilter
from repro.filters.location import LocationDeltaFilter
from repro.filters.membership import Band, BandTransitionFilter
from repro.filters.reservoir import ReservoirSamplingFilter
from repro.filters.validate import replay_candidate_sets

walk_2d = st.lists(
    st.tuples(
        st.floats(min_value=-2.0, max_value=2.0, allow_nan=False),
        st.floats(min_value=-2.0, max_value=2.0, allow_nan=False),
    ),
    min_size=10,
    max_size=80,
)


def _position_trace(steps):
    xs, ys = [0.0], [0.0]
    for dx, dy in steps:
        xs.append(xs[-1] + dx)
        ys.append(ys[-1] + dy)
    return Trace.from_columns({"x": xs, "y": ys}, interval_ms=10)


@given(
    walk_2d,
    st.floats(min_value=1.0, max_value=6.0),
    st.floats(min_value=0.0, max_value=0.5),
)
@settings(max_examples=30, deadline=None)
def test_location_candidates_within_slack(steps, delta, slack_fraction):
    trace = _position_trace(steps)
    slack = delta * slack_fraction
    sets = replay_candidate_sets(
        lambda: LocationDeltaFilter("l", "x", "y", delta, slack), trace
    )
    for cs in sets:
        rx, ry = cs.reference.value("x"), cs.reference.value("y")
        for item in cs.tuples:
            distance = math.hypot(item.value("x") - rx, item.value("y") - ry)
            assert distance <= slack + 1e-9


@given(walk_2d)
@settings(max_examples=25, deadline=None)
def test_location_group_never_worse_than_si(steps):
    trace = _position_trace(steps)

    def group():
        return [
            LocationDeltaFilter("a", "x", "y", 2.0, 1.0),
            LocationDeltaFilter("b", "x", "y", 3.0, 1.4),
        ]

    ga = GroupAwareEngine(group()).run(trace)
    si = SelfInterestedEngine(group()).run(trace)
    assert ga.output_count <= si.output_count


band_values = st.lists(
    st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
    min_size=5,
    max_size=80,
)

_BANDS = [Band("low", 0.0, 33.0), Band("mid", 33.5, 66.0), Band("high", 66.5, 100.0)]


@given(band_values, st.integers(min_value=1, max_value=6))
@settings(max_examples=40, deadline=None)
def test_band_witnesses_share_the_reference_band(values, window):
    trace = Trace.from_values(values, attribute="v", interval_ms=10)
    flt = BandTransitionFilter("b", "v", _BANDS, witness_window=window)
    sets = replay_candidate_sets(
        lambda: BandTransitionFilter("b", "v", _BANDS, witness_window=window), trace
    )
    for cs in sets:
        bands = {flt.classify(item.value("v")) for item in cs.tuples}
        assert len(bands) == 1  # every witness certifies the same band
        assert len(cs) <= window


@given(band_values)
@settings(max_examples=30, deadline=None)
def test_band_group_matches_si_transition_count(values):
    """Per filter, group-aware output = one tuple per transition = SI count."""
    trace = Trace.from_values(values, attribute="v", interval_ms=10)
    flt = BandTransitionFilter("b", "v", _BANDS, witness_window=3)
    ga = GroupAwareEngine([flt]).run(trace)
    si_filter = BandTransitionFilter("b", "v", _BANDS, witness_window=3)
    si = SelfInterestedEngine([si_filter]).run(trace)
    assert len(ga.outputs_for("b")) == len(si.outputs_for("b"))


@given(
    st.integers(min_value=1, max_value=5),
    st.integers(min_value=5, max_value=30),
    st.integers(min_value=20, max_value=120),
)
@settings(max_examples=30, deadline=None)
def test_reservoir_degree_met_in_every_window(size, window, n):
    if size > window:
        size = window
    trace = Trace.from_values([float(i % 7) for i in range(n)], attribute="v")
    flt = ReservoirSamplingFilter("r", reservoir_size=size, window=window)
    result = GroupAwareEngine([flt]).run(trace)
    full_windows, remainder = divmod(n, window)
    expected = full_windows * size + (min(size, remainder) if remainder else 0)
    assert len(result.outputs_for("r")) == expected


@given(
    st.lists(
        st.floats(min_value=-3.0, max_value=3.0, allow_nan=False),
        min_size=10,
        max_size=100,
    )
)
@settings(max_examples=25, deadline=None)
def test_punctuated_pcs_stream_always_repairable(steps):
    values = [0.0]
    for step in steps:
        values.append(values[-1] + step)
    trace = Trace.from_values(values, attribute="temp", interval_ms=10)
    group = [
        DeltaCompressionFilter("A", "temp", 2.0, 1.0),
        DeltaCompressionFilter("B", "temp", 3.0, 1.5),
    ]
    result = GroupAwareEngine(
        group,
        algorithm="per_candidate_set",
        output_strategy=PerCandidateSetOutput(),
    ).run(trace)
    buffer = OrderingBuffer()
    for emission in result.emissions:
        buffer.offer(emission)
    buffer.flush()
    buffer.assert_ordered()
    assert measure_disorder(buffer.released) == 0
    assert len(buffer.released) == len(result.emissions)
