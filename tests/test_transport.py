"""Tests for the networked dissemination gateway (wire + server + client)."""

from __future__ import annotations

import asyncio
import json
import socket

import pytest

from repro.core.engine import GroupAwareEngine
from repro.core.tuples import StreamTuple
from repro.filters.spec import parse_filter
from repro.runtime.tasks import EngineConfig
from repro.service import DisseminationService, ServiceConfig, decided_map
from repro.sources import random_walk_trace
from repro.transport import (
    FrameDecoder,
    FrameTooLarge,
    GatewayClient,
    GatewayError,
    GatewayServer,
    ProtocolError,
    SnapshotHTTP,
    encode_frame,
    tuple_from_wire,
    tuple_to_wire,
)
from repro.transport.protocol import PROTOCOL_VERSION

SPECS = [
    ("app0", "DC1(temp, 2.0, 1.0)"),
    ("app1", "DC1(temp, 3.0, 1.5)"),
]

#: Tiny delta: nearly every tuple is decided for delivery.
CHATTY_SPEC = "DC1(temp, 0.0001, 0.00005)"


def _trace(n=200, seed=3):
    return random_walk_trace(n=n, seed=seed, attribute="temp")


def _service(algorithm="region", **overrides) -> DisseminationService:
    service = DisseminationService(
        ServiceConfig(
            engine=EngineConfig(algorithm=algorithm),
            batch_max_items=overrides.pop("batch_max_items", 1),
            **overrides,
        )
    )
    service.add_source("src")
    return service


# ---------------------------------------------------------------------------
# Wire protocol (sans-io)
# ---------------------------------------------------------------------------
class TestProtocol:
    def test_roundtrip_single_frame(self):
        frame = {"t": "ingest", "source": "src", "tuple": {"seq": 1}}
        decoder = FrameDecoder()
        assert decoder.feed(encode_frame(frame)) == [frame]

    def test_split_frame_reassembly(self):
        """Byte-by-byte delivery still yields exactly one frame."""
        frame = {"t": "snapshot", "seq": 42}
        payload = encode_frame(frame)
        decoder = FrameDecoder()
        collected = []
        for i in range(len(payload)):
            collected.extend(decoder.feed(payload[i : i + 1]))
        assert collected == [frame]
        assert decoder.buffered == 0

    def test_coalesced_frames(self):
        """Several frames in one chunk come back in order."""
        frames = [{"t": "tick", "now_ms": float(i)} for i in range(5)]
        blob = b"".join(encode_frame(f) for f in frames)
        decoder = FrameDecoder()
        assert decoder.feed(blob) == frames

    def test_split_across_frame_boundary(self):
        a, b = {"t": "a"}, {"t": "b"}
        blob = encode_frame(a) + encode_frame(b)
        decoder = FrameDecoder()
        head, tail = blob[:7], blob[7:]
        first = decoder.feed(head)
        second = decoder.feed(tail)
        assert first + second == [a, b]

    def test_oversized_frame_rejected_from_header(self):
        decoder = FrameDecoder(max_frame_bytes=64)
        frame = {"t": "ingest", "pad": "x" * 200}
        with pytest.raises(FrameTooLarge):
            decoder.feed(encode_frame(frame))

    def test_oversized_frame_rejected_on_encode(self):
        with pytest.raises(FrameTooLarge):
            encode_frame({"t": "x", "pad": "y" * 100}, max_frame_bytes=32)

    def test_undecodable_body_rejected(self):
        import struct

        blob = struct.pack(">I", 4) + b"\xff\xfe\xfd\xfc"
        with pytest.raises(ProtocolError):
            FrameDecoder().feed(blob)

    def test_frame_must_be_tagged_object(self):
        import struct

        blob = struct.pack(">I", 4) + b'"ok"'
        with pytest.raises(ProtocolError):
            FrameDecoder().feed(blob)

    def test_tuple_codec_roundtrip(self):
        item = StreamTuple(seq=9, timestamp=90.0, values={"temp": 1.5, "ph": 7.0})
        again = tuple_from_wire(json.loads(json.dumps(tuple_to_wire(item))))
        assert again.seq == item.seq
        assert again.timestamp == item.timestamp
        assert again.values == item.values

    def test_malformed_tuple_payload(self):
        with pytest.raises(ProtocolError):
            tuple_from_wire({"seq": 1})  # no ts/values


# ---------------------------------------------------------------------------
# End-to-end over a real localhost socket
# ---------------------------------------------------------------------------
async def _with_gateway(service, coro, **server_kwargs):
    gateway = GatewayServer(service, **server_kwargs)
    await gateway.start()
    try:
        return await coro(gateway)
    finally:
        await gateway.shutdown()


class TestGatewayEndToEnd:
    @pytest.mark.parametrize("algorithm", ["region", "per_candidate_set"])
    def test_wire_outputs_equal_batch_engine(self, algorithm):
        """The acceptance bar: a trace driven through GatewayClient over
        a real socket decides byte-identically to the batch engine."""
        trace = _trace()

        async def run():
            service = _service(algorithm)
            gateway = GatewayServer(service)
            await gateway.start()
            client = await GatewayClient.connect("127.0.0.1", gateway.port)
            delivered = {app: [] for app, _ in SPECS}

            async def consume(sub, sink):
                async for batch in sub.batches():
                    sink.extend(item.seq for item in batch.items)

            consumers = []
            for app, spec in SPECS:
                sub = await client.subscribe(
                    app, "src", spec, queue_capacity=10_000
                )
                consumers.append(
                    asyncio.create_task(consume(sub, delivered[app]))
                )
            for item in trace:
                await client.ingest("src", item)
            epochs = (await service.close())["src"]
            await asyncio.gather(*consumers)
            await client.close()
            await gateway.shutdown()
            return epochs, delivered

        epochs, delivered = asyncio.run(run())
        filters = [parse_filter(spec, name=app) for app, spec in SPECS]
        reference = GroupAwareEngine(filters, algorithm=algorithm).run(trace)
        assert len(epochs) == 1
        assert decided_map(epochs[0]) == decided_map(reference)
        # Delivered per-app streams are the reference decisions flattened.
        want = {
            app: [seq for row in rows for seq in row]
            for app, rows in decided_map(reference).items()
        }
        assert delivered == want

    def test_snapshot_and_tick_over_wire(self):
        async def run():
            service = _service()

            async def body(gateway):
                client = await GatewayClient.connect("127.0.0.1", gateway.port)
                await client.subscribe("app0", "src", SPECS[0][1])
                for item in _trace(n=40):
                    await client.ingest("src", item)
                emissions = await client.tick(10_000.0)
                snapshot = await client.snapshot()
                await client.close()
                return emissions, snapshot

            return await _with_gateway(service, body)

        emissions, snapshot = asyncio.run(run())
        assert emissions >= 0
        assert snapshot["offered"] == 40
        assert snapshot["session_count"] == 1
        assert snapshot["decide_p99_ms"] >= snapshot["decide_p50_ms"] >= 0.0

    def test_ensure_source_and_unknown_source(self):
        async def run():
            service = _service()

            async def body(gateway):
                client = await GatewayClient.connect("127.0.0.1", gateway.port)
                assert await client.ensure_source("fresh") is True
                assert await client.ensure_source("fresh") is False
                with pytest.raises(GatewayError):
                    await client.ingest(
                        "nope", StreamTuple(seq=0, timestamp=0.0, values={})
                    )
                # The connection survives a bad request...
                assert (await client.snapshot())["offered"] == 0
                # ...and a refused fire-and-forget (the error reply has
                # reply_to=null and must not be treated as fatal).
                await client.ingest(
                    "nope",
                    StreamTuple(seq=1, timestamp=1.0, values={}),
                    ack=False,
                )
                assert (await client.snapshot())["offered"] == 0
                await client.close()

            await _with_gateway(service, body)

        asyncio.run(run())

    def test_auth_token_required(self):
        async def run():
            service = _service()
            gateway = GatewayServer(service, auth_token="sekrit")
            await gateway.start()
            with pytest.raises(GatewayError) as info:
                await GatewayClient.connect("127.0.0.1", gateway.port)
            assert info.value.code == "auth"
            client = await GatewayClient.connect(
                "127.0.0.1", gateway.port, token="sekrit"
            )
            assert client.server_sources == ("src",)
            await client.close()
            await gateway.shutdown()

        asyncio.run(run())

    def test_oversized_wire_frame_closes_connection(self):
        async def run():
            service = _service()
            gateway = GatewayServer(service, max_frame_bytes=512)
            await gateway.start()
            client = await GatewayClient.connect("127.0.0.1", gateway.port)
            with pytest.raises((ConnectionError, FrameTooLarge)):
                # Encoded client-side below the client's own limit, but
                # past the server's: the server must reject and close.
                await client.ingest(
                    "src",
                    StreamTuple(seq=0, timestamp=0.0, values={"temp": 0.0}),
                    pad_bytes=4096,
                )
            await client.close()
            await gateway.shutdown()

        asyncio.run(run())

    def test_qos_profile_resolves_session_limits(self):
        """A handshake QoS profile shapes the server-side session."""

        async def run():
            service = _service(
                batch_max_items=8, queue_capacity=16, batch_max_delay_ms=50.0
            )

            async def body(gateway):
                client = await GatewayClient.connect("127.0.0.1", gateway.port)
                await client.subscribe(
                    "app0",
                    "src",
                    SPECS[0][1],
                    qos={"latency_tolerance_ms": 40.0, "priority": 2},
                )
                session = service._sources["src"].sessions["app0"]
                await client.close()
                return (
                    session.queue.capacity,
                    session.queue.policy,
                    session.batcher.max_delay_ms,
                )

            return await _with_gateway(service, body)

        capacity, policy, delay = asyncio.run(run())
        assert capacity == 64  # 16 doubled per priority level
        assert policy == "drop_oldest"  # latency-bounded prefers fresh
        assert delay == 10.0  # a quarter of the 40 ms tolerance


class TestConnectionTeardown:
    def test_abrupt_disconnect_reclaims_sessions(self):
        """Killing the socket mid-delivery leaks no session or pub/sub
        registration and leaves the broker serving."""

        async def run():
            service = _service()
            gateway = GatewayServer(service)
            await gateway.start()
            client = await GatewayClient.connect("127.0.0.1", gateway.port)
            sub = await client.subscribe("app0", "src", CHATTY_SPEC)
            consumed: list[int] = []

            async def consume():
                async for batch in sub.batches():
                    consumed.extend(item.seq for item in batch.items)

            consumer = asyncio.create_task(consume())
            for item in _trace(n=20):
                await client.ingest("src", item)
            assert service.subscriptions("src")
            # Abort without bye/unsubscribe: simulated crash mid-delivery.
            client._writer.transport.abort()
            await consumer
            for _ in range(200):
                if not service.subscriptions("src"):
                    break
                await asyncio.sleep(0.01)
            subscriptions = service.subscriptions("src")
            registered = service.system.subscribers("src")
            # The broker keeps serving a fresh subscriber afterwards.
            fresh = await GatewayClient.connect("127.0.0.1", gateway.port)
            await fresh.subscribe("app1", "src", SPECS[1][1])
            await fresh.close()
            await client.close(send_bye=False)
            await gateway.shutdown()
            return subscriptions, registered

        subscriptions, registered = asyncio.run(run())
        assert subscriptions == []
        assert registered == []

    def test_slow_consumer_disconnect_policy_closes_socket(self):
        """An overflowing ``disconnect`` session drops the TCP
        connection, not just the broker-side queue."""

        async def run():
            service = _service()
            gateway = GatewayServer(service, sndbuf_bytes=2048)
            await gateway.start()
            # Raw subscriber that never reads after the handshake, with a
            # minimal receive buffer so kernel buffering cannot hide the
            # stall from the server's pump.
            raw = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            raw.setsockopt(socket.SOL_SOCKET, socket.SO_RCVBUF, 1)
            raw.setblocking(False)
            loop = asyncio.get_running_loop()
            await loop.sock_connect(raw, ("127.0.0.1", gateway.port))
            reader, writer = await asyncio.open_connection(sock=raw)
            writer.write(encode_frame({"t": "hello", "v": PROTOCOL_VERSION, "seq": 1}))
            writer.write(
                encode_frame(
                    {
                        "t": "subscribe",
                        "seq": 2,
                        "app": "laggard",
                        "source": "src",
                        "spec": CHATTY_SPEC,
                        "queue_capacity": 1,
                        "overflow": "disconnect",
                        "batch_max_items": 1,
                    }
                )
            )
            await writer.drain()
            # Feed enough chatty traffic to flood the tiny buffers.
            feeder = await GatewayClient.connect("127.0.0.1", gateway.port)
            disconnected = False
            for index, item in enumerate(_trace(n=2000, seed=11)):
                try:
                    await asyncio.wait_for(
                        feeder.ingest("src", item), timeout=5.0
                    )
                except GatewayError:
                    # offer() may observe the reaped session mid-detach.
                    pass
                if index % 50 == 0 and not service.subscriptions("src"):
                    disconnected = True
                    break
            for _ in range(200):
                if not service.subscriptions("src"):
                    disconnected = True
                    break
                await asyncio.sleep(0.01)
            # The server must have closed the laggard's socket: reading
            # (which we never did) now finds EOF after the error frames.
            eof = False
            try:
                while True:
                    chunk = await asyncio.wait_for(reader.read(65536), timeout=5.0)
                    if not chunk:
                        eof = True
                        break
            except (ConnectionError, asyncio.TimeoutError):
                eof = True  # reset counts: the transport is gone
            writer.close()
            await feeder.close()
            snapshot = service.snapshot()
            await gateway.shutdown()
            return disconnected, eof, snapshot

        disconnected, eof, snapshot = asyncio.run(run())
        assert disconnected, "session was never reaped"
        assert eof, "socket stayed open after disconnect-policy overflow"
        retired = {s.app_name: s for s in snapshot.retired}
        assert retired["laggard"].disconnected is True
        assert retired["laggard"].dropped_tuples > 0

    def test_dead_connection_cannot_unsubscribe_reregistered_app(self):
        """conn1 subscribes then unsubscribes 'A'; conn2 re-registers
        'A'; conn1's later teardown must not tear down conn2's session."""

        async def run():
            service = _service()
            gateway = GatewayServer(service)
            await gateway.start()
            conn1 = await GatewayClient.connect("127.0.0.1", gateway.port)
            sub1 = await conn1.subscribe("A", "src", SPECS[0][1])
            await conn1.unsubscribe("A")
            async for _ in sub1.batches():
                pass
            conn2 = await GatewayClient.connect("127.0.0.1", gateway.port)
            sub2 = await conn2.subscribe("A", "src", CHATTY_SPEC)
            received: list[int] = []

            async def consume():
                async for batch in sub2.batches():
                    received.extend(item.seq for item in batch.items)

            consumer = asyncio.create_task(consume())
            # conn1 goes away (clean bye) — conn2's session must survive.
            await conn1.close()
            await asyncio.sleep(0.05)
            alive = service.subscriptions("src")
            for item in _trace(n=10):
                await conn2.ingest("src", item)
            await conn2.unsubscribe("A")
            await consumer
            await conn2.close()
            await gateway.shutdown()
            return alive, received, sub2.closed_reason

        alive, received, reason = asyncio.run(run())
        assert [app for app, _ in alive] == ["A"]
        assert received, "conn2's stream was torn down by conn1's exit"
        assert reason == "unsubscribed"

    def test_shutdown_breaks_block_policy_wedge(self):
        """SIGTERM-path shutdown must not hang when a block-policy
        consumer wedges its pump while a producer's offer holds the
        source lock blocked on the full queue."""

        async def run():
            service = _service()
            gateway = GatewayServer(service, sndbuf_bytes=2048)
            await gateway.start()
            # Subscriber that never reads after the handshake.
            raw = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            raw.setsockopt(socket.SOL_SOCKET, socket.SO_RCVBUF, 1)
            raw.setblocking(False)
            loop = asyncio.get_running_loop()
            await loop.sock_connect(raw, ("127.0.0.1", gateway.port))
            reader, writer = await asyncio.open_connection(sock=raw)
            writer.write(
                encode_frame({"t": "hello", "v": PROTOCOL_VERSION, "seq": 1})
            )
            writer.write(
                encode_frame(
                    {
                        "t": "subscribe",
                        "seq": 2,
                        "app": "wedge",
                        "source": "src",
                        "spec": CHATTY_SPEC,
                        "queue_capacity": 1,
                        "overflow": "block",
                        "batch_max_items": 1,
                    }
                )
            )
            await writer.drain()
            feeder = await GatewayClient.connect("127.0.0.1", gateway.port)

            async def flood():
                for item in _trace(n=3000, seed=13):
                    await feeder.ingest("src", item)

            flood_task = asyncio.create_task(flood())
            # Wait until an offer is genuinely wedged: the queue stays
            # full AND delivery makes no progress for ~200 ms (a full
            # queue alone is transient while the pump still drains).
            last_delivered = -1
            stable = 0
            for _ in range(2000):
                wedged = service._sources["src"].sessions.get("wedge")
                if wedged is not None:
                    delivered = wedged.stats.delivered_tuples
                    if (
                        delivered == last_delivered
                        and wedged.queue.depth >= wedged.queue.capacity
                    ):
                        stable += 1
                        if stable >= 20:
                            break
                    else:
                        stable = 0
                    last_delivered = delivered
                await asyncio.sleep(0.01)
            assert stable >= 20, "flood never wedged the pump"
            assert not flood_task.done()
            terminal = await asyncio.wait_for(
                gateway.shutdown(drain_timeout_s=0.5), timeout=20
            )
            flood_task.cancel()
            try:
                await flood_task
            except (asyncio.CancelledError, ConnectionError, GatewayError):
                pass
            writer.close()
            await feeder.close(send_bye=False)
            return terminal

        terminal = asyncio.run(run())
        # The point is that shutdown RETURNED (no deadlock); the wedged
        # session was declared dead to break the producer's blocked put.
        everyone = terminal["sessions"] + terminal["retired"]
        wedge = [s for s in everyone if s["app_name"] == "wedge"]
        assert wedge and wedge[0]["disconnected"] is True

    def test_unsubscribe_sends_closed_and_ends_stream(self):
        async def run():
            service = _service()

            async def body(gateway):
                client = await GatewayClient.connect("127.0.0.1", gateway.port)
                sub = await client.subscribe("app0", "src", SPECS[0][1])
                await client.unsubscribe("app0")
                batches = [b async for b in sub.batches()]
                await client.close()
                return batches, sub.closed_reason

            return await _with_gateway(service, body)

        batches, reason = asyncio.run(run())
        assert batches == []
        assert reason == "unsubscribed"


# ---------------------------------------------------------------------------
# HTTP snapshot endpoint
# ---------------------------------------------------------------------------
async def _http_get(port: int, path: str) -> tuple[str, dict]:
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    writer.write(
        f"GET {path} HTTP/1.1\r\nHost: localhost\r\n\r\n".encode("ascii")
    )
    await writer.drain()
    raw = await reader.read()
    writer.close()
    head, _, body = raw.partition(b"\r\n\r\n")
    status = head.split(b"\r\n", 1)[0].decode("ascii")
    return status, json.loads(body)


class TestSnapshotHTTP:
    def test_healthz_snapshot_and_404(self):
        async def run():
            service = _service()
            http = SnapshotHTTP(service)
            await http.start()
            await service.subscribe("app0", "src", SPECS[0][1])
            for item in _trace(n=30):
                await service.offer("src", item)
            health = await _http_get(http.port, "/healthz")
            snap = await _http_get(http.port, "/snapshot")
            missing = await _http_get(http.port, "/nope")
            post_reader, post_writer = await asyncio.open_connection(
                "127.0.0.1", http.port
            )
            post_writer.write(b"POST /snapshot HTTP/1.1\r\n\r\n")
            await post_writer.drain()
            post_raw = await post_reader.read()
            post_writer.close()
            await http.close()
            await service.close()
            return health, snap, missing, post_raw

        health, snap, missing, post_raw = asyncio.run(run())
        assert health[0] == "HTTP/1.1 200 OK"
        assert health[1]["status"] == "ok"
        assert health[1]["sources"] == ["src"]
        assert snap[0] == "HTTP/1.1 200 OK"
        assert snap[1]["offered"] == 30
        assert "decide_p99_ms" in snap[1] and "decide_p50_ms" in snap[1]
        assert missing[0] == "HTTP/1.1 404 Not Found"
        assert post_raw.startswith(b"HTTP/1.1 405")


class TestAdaptiveIngest:
    def test_grows_additively_under_steady_acks(self):
        from repro.transport.client import AdaptiveIngest

        control = AdaptiveIngest(16)
        assert control.size == 1
        for _ in range(40):
            control.observe(control.size, 0.001 * control.size)
        assert control.size == 16  # reached max, one step per ack
        assert control.backoffs == 0
        # Trajectory records every change, starting from the floor.
        sizes = [size for _, size in control.trajectory]
        assert sizes[0] == 1 and sizes[-1] == 16
        assert sizes == sorted(sizes)

    def test_halves_on_latency_spike_and_recovers(self):
        from repro.transport.client import AdaptiveIngest

        control = AdaptiveIngest(16)
        for _ in range(20):
            control.observe(control.size, 0.001 * control.size)
        assert control.size == 16
        # A block-policy stall: per-tuple ack latency explodes.
        control.observe(16, 2.0)
        assert control.size == 8
        assert control.backoffs == 1
        control.observe(8, 2.0)
        assert control.size == 4
        # Healthy acks grow it back one step at a time.
        for _ in range(30):
            control.observe(control.size, 0.001 * control.size)
        assert control.size == 16

    def test_bounds_and_validation(self):
        from repro.transport.client import AdaptiveIngest

        control = AdaptiveIngest(4, min_size=2)
        for _ in range(10):
            control.observe(control.size, 0.0005 * control.size)
        assert control.size == 4
        for _ in range(10):
            control.observe(control.size, 5.0)
        assert control.size == 2  # never below min_size
        control.observe(0, 1.0)  # nonsense observations are ignored
        control.observe(4, -1.0)
        assert control.size == 2
        with pytest.raises(ValueError):
            AdaptiveIngest(0)
        with pytest.raises(ValueError):
            AdaptiveIngest(4, min_size=8)
        with pytest.raises(ValueError):
            AdaptiveIngest(4, backoff_ratio=1.0)

    def test_early_fast_fluke_fades_via_baseline_decay(self):
        from repro.transport.client import AdaptiveIngest

        control = AdaptiveIngest(16, backoff_ratio=2.0, baseline_decay=1.05)
        control.observe(1, 0.0001)  # one unrepresentatively fast ack
        # Steady-state acks are 10x slower; without decay every one of
        # them would read as congestion and pin the size at the floor.
        for _ in range(80):
            control.observe(control.size, 0.001 * control.size)
        assert control.size > 8
