"""End-to-end integration tests across the whole stack."""

import pytest

from repro.core.cuts import TimeConstraint
from repro.core.engine import GroupAwareEngine, SelfInterestedEngine
from repro.experiments.configs import TABLE_4_1_GROUPS, table_5_2_groups
from repro.experiments.harness import STANDARD_VARIANTS, run_group
from repro.filters.spec import parse_filter, parse_group
from repro.filters.validate import replay_candidate_sets, validate_outputs
from repro.net.overlay import LinkModel, OverlayNetwork
from repro.net.pubsub import StreamingSystem
from repro.sources import chlorine_trace, namos_trace


@pytest.fixture(scope="module")
def trace():
    return namos_trace(n=1200, seed=7)


class TestTable41Groups(object):
    """The headline Chapter-4 comparison on the NAMOS trace."""

    @pytest.fixture(scope="class")
    def runs(self, request):
        shared = namos_trace(n=1200, seed=7)
        return {
            name: run_group(name, specs, shared, STANDARD_VARIANTS)
            for name, specs in TABLE_4_1_GROUPS.items()
        }

    def test_group_aware_beats_self_interested(self, runs):
        for name, run in runs.items():
            for variant in ("RG", "RG+C", "PS", "PS+C"):
                assert run.oi_ratio(variant) <= run.oi_ratio("SI"), (name, variant)

    def test_savings_are_substantial(self, runs):
        """The paper: group-aware under 80% of SI bandwidth.  We allow a
        modest margin for the synthetic trace."""
        for name, run in runs.items():
            assert run.output_ratio("RG") < 0.9, name

    def test_rg_and_ps_comparable(self, runs):
        for name, run in runs.items():
            assert run.oi_ratio("PS") == pytest.approx(
                run.oi_ratio("RG"), rel=0.1
            ), name

    def test_quality_for_every_application(self, runs, trace):
        for name, specs in TABLE_4_1_GROUPS.items():
            result = runs[name].results["RG"]
            filters = parse_group(specs)
            for index, flt in enumerate(filters):
                sets = replay_candidate_sets(
                    lambda spec=specs[index]: parse_filter(spec, name="check"),
                    trace,
                )
                delivered = result.outputs_for(flt.name)
                report = validate_outputs(sets, delivered)
                assert report.ok, (name, flt.name)


class TestTenGroups:
    def test_all_groups_run_and_save(self):
        shared = namos_trace(n=1000, seed=9)
        groups = table_5_2_groups(shared, seed=9)
        for group_id, specs in groups.items():
            ga = GroupAwareEngine(parse_group(specs), algorithm="region").run(shared)
            si = SelfInterestedEngine(parse_group(specs)).run(shared)
            assert ga.output_count <= si.output_count, group_id
            assert ga.output_count > 0, group_id


class TestCutsEndToEnd:
    def test_cut_ladder_reduces_latency_monotonically(self, trace):
        specs = TABLE_4_1_GROUPS["DC_Fluoro"]
        means = []
        for constraint_ms in (2000.0, 250.0, 60.0):
            filters = parse_group(specs)
            result = GroupAwareEngine(
                filters,
                algorithm="region",
                time_constraint=TimeConstraint(constraint_ms),
            ).run(trace)
            delays = [e.delay_ms for e in result.emissions]
            means.append(sum(delays) / len(delays))
        assert means[0] >= means[1] >= means[2]


class TestFullDissemination:
    def test_chlorine_scenario_pipeline(self):
        """Source -> group-aware filters -> multicast -> applications."""
        plume = chlorine_trace(n=1000, seed=23)
        peak = max(plume.column("cl_near"))
        overlay = OverlayNetwork(
            [f"truck{i}" for i in range(5)], LinkModel(bandwidth_mbps=1.0)
        )
        system = StreamingSystem(overlay)
        system.add_source("cl", "truck0")
        for index, fraction in enumerate((0.05, 0.08, 0.12)):
            delta = fraction * peak
            system.subscribe(
                f"app{index}",
                f"truck{index + 1}",
                "cl",
                f"DC1(cl_near, {delta:.6g}, {delta / 2:.6g})",
            )
        result = system.disseminate("cl", plume, algorithm="per_candidate_set")
        assert result.engine_result.output_count > 0
        assert result.accounting.total_messages > 0
        # Every application's deliveries match the engine's decisions.
        for index in range(3):
            name = f"app{index}"
            delivered = {d.item.seq for d in result.deliveries_for(name)}
            owed = {t.seq for t in result.engine_result.outputs_for(name)}
            assert delivered == owed
