"""Unit tests for the Solar-like publish/subscribe layer."""

import pytest

from repro.core.tuples import Trace
from repro.filters.delta import DeltaCompressionFilter
from repro.net.overlay import OverlayNetwork
from repro.net.pubsub import StreamingSystem
from tests.conftest import random_walk_values

NODES = [f"node{i}" for i in range(6)]


def _system():
    return StreamingSystem(OverlayNetwork(NODES))


def _trace(n=300, seed=0):
    return Trace.from_values(
        random_walk_values(n, seed=seed), attribute="temp", interval_ms=10
    )


def _subscribe_three(system):
    system.add_source("src", "node0")
    for index, (delta, slack) in enumerate([(2.0, 1.0), (3.0, 1.5), (4.4, 2.0)]):
        system.subscribe(
            f"app{index}",
            NODES[index + 1],
            "src",
            DeltaCompressionFilter(f"app{index}", "temp", delta, slack),
        )


class TestRegistration:
    def test_duplicate_source_rejected(self):
        system = _system()
        system.add_source("src", "node0")
        with pytest.raises(ValueError):
            system.add_source("src", "node1")

    def test_unknown_node_rejected(self):
        with pytest.raises(KeyError):
            _system().add_source("src", "ghost")

    def test_subscribe_unknown_source(self):
        with pytest.raises(KeyError):
            _system().subscribe(
                "app", "node1", "ghost", DeltaCompressionFilter("app", "temp", 1, 0.4)
            )

    def test_filter_name_must_match_app(self):
        system = _system()
        system.add_source("src", "node0")
        with pytest.raises(ValueError, match="must equal"):
            system.subscribe(
                "app", "node1", "src", DeltaCompressionFilter("other", "temp", 1, 0.4)
            )

    def test_textual_spec_subscription(self):
        system = _system()
        system.add_source("src", "node0")
        system.subscribe("app", "node1", "src", "DC1(temp, 2.0, 1.0)")
        assert system.subscribers("src") == ["app"]

    def test_disseminate_without_subscribers(self):
        system = _system()
        system.add_source("src", "node0")
        with pytest.raises(ValueError, match="no subscribers"):
            system.disseminate("src", _trace())


class TestDissemination:
    def test_group_aware_saves_link_bytes(self):
        trace = _trace(n=400, seed=2)
        ga_system = _system()
        _subscribe_three(ga_system)
        ga = ga_system.disseminate("src", trace, algorithm="region")

        si_system = _system()
        _subscribe_three(si_system)
        si = si_system.disseminate("src", trace, algorithm="self_interested")

        assert ga.engine_result.output_count <= si.engine_result.output_count
        assert ga.total_link_bytes <= si.total_link_bytes

    def test_every_app_receives_its_outputs(self):
        trace = _trace(n=300, seed=3)
        system = _system()
        _subscribe_three(system)
        result = system.disseminate("src", trace, algorithm="region")
        for index in range(3):
            name = f"app{index}"
            delivered = {d.item.seq for d in result.deliveries_for(name)}
            owed = {t.seq for t in result.engine_result.outputs_for(name)}
            assert delivered == owed

    def test_end_to_end_latency_positive(self):
        trace = _trace(n=200, seed=4)
        system = _system()
        _subscribe_three(system)
        result = system.disseminate("src", trace, algorithm="per_candidate_set")
        assert result.deliveries
        for delivery in result.deliveries:
            assert delivery.end_to_end_ms > 0

    def test_mean_end_to_end_per_app(self):
        trace = _trace(n=200, seed=5)
        system = _system()
        _subscribe_three(system)
        result = system.disseminate("src", trace, algorithm="self_interested")
        assert result.mean_end_to_end_ms("app0") > 0
        assert result.mean_end_to_end_ms() > 0

    def test_mean_end_to_end_empty(self):
        from repro.core.engine import EngineResult
        from repro.net.accounting import BandwidthAccounting
        from repro.net.pubsub import DisseminationResult

        result = DisseminationResult(EngineResult(), BandwidthAccounting())
        assert result.mean_end_to_end_ms() == 0.0


class TestUnsubscribe:
    def test_unsubscribe_then_resubscribe(self):
        system = _system()
        system.add_source("src", "node0")
        system.subscribe("app", "node1", "src", "DC1(temp, 2.0, 1.0)")
        system.unsubscribe("app", "src")
        assert system.subscribers("src") == []
        # Re-subscribing from the same node reuses the grafted branch.
        system.subscribe("app", "node1", "src", "DC1(temp, 1.0, 0.5)")
        assert system.subscribers("src") == ["app"]

    def test_unsubscribe_unknown_app(self):
        system = _system()
        system.add_source("src", "node0")
        with pytest.raises(KeyError, match="not subscribed"):
            system.unsubscribe("ghost", "src")

    def test_double_subscribe_rejected(self):
        system = _system()
        system.add_source("src", "node0")
        system.subscribe("app", "node1", "src", "DC1(temp, 2.0, 1.0)")
        with pytest.raises(ValueError, match="already subscribed"):
            system.subscribe("app", "node1", "src", "DC1(temp, 1.0, 0.5)")

    def test_resubscribe_from_other_node_rejected(self):
        system = _system()
        system.add_source("src", "node0")
        system.subscribe("app", "node1", "src", "DC1(temp, 2.0, 1.0)")
        system.unsubscribe("app", "src")
        with pytest.raises(ValueError, match="grafted"):
            system.subscribe("app", "node2", "src", "DC1(temp, 2.0, 1.0)")
