"""Remediation loop: proposers, verifier, risk gating, scheduling."""

import asyncio

import pytest

from repro.obs.events import EventLog
from repro.obs.slo import Verdict
from repro.service.remediate import (
    Action,
    RemediationLoop,
    RemediationPolicy,
    propose_heal,
    propose_rebalance,
    propose_scale,
    propose_shed,
)


def _edge(name, status="critical", previous="ok"):
    return (Verdict(name=name, status=status, signal="x"), previous)


def _worker(index, *, alive=True, ready=True, failed=False, sources=(), apps=()):
    return {
        "index": index,
        "alive": alive,
        "ready": ready,
        "failed": failed,
        "respawns": 0,
        "backoff_s": 0.0,
        "sources": list(sources),
        "apps": list(apps),
    }


def _standby(index, mirror_of, *, alive=True, ready=True, failed=False, armed=()):
    return {
        "index": index,
        "mirror_of": mirror_of,
        "alive": alive,
        "ready": ready,
        "failed": failed,
        "armed_sources": list(armed),
    }


class FakeCluster:
    """Control-plane double recording every actuation."""

    def __init__(self, fleet):
        self.fleet = fleet
        self.calls = []
        self.defer_death_handling = False

    def fleet_status(self):
        return self.fleet

    async def heal_worker(self, index, *, prefer_standby=True):
        self.calls.append(("heal", index, prefer_standby))
        # Healing makes the slot healthy for post-verification.
        for worker in self.fleet["workers"]:
            if worker["index"] == index:
                worker["alive"] = worker["ready"] = True
        return "adopted" if prefer_standby else "respawned"

    async def migrate_source(self, source, to):
        self.calls.append(("migrate", source, to))
        self.fleet["sources"][source] = to
        return {"moved": True, "exact": True}

    async def add_worker(self):
        self.calls.append(("add",))
        return 9

    async def remove_worker(self):
        self.calls.append(("remove",))
        return 9

    async def unsubscribe(self, app):
        self.calls.append(("shed", app))
        for worker in self.fleet["workers"]:
            if app in worker["apps"]:
                worker["apps"].remove(app)


def _dead_worker_fleet(*, with_standby=True):
    return {
        "workers": [
            _worker(0, alive=False, ready=False, sources=["s0"], apps=["a"]),
            _worker(1, sources=["s1"]),
        ],
        "standbys": (
            [_standby(2, 0, armed=["s0"])] if with_standby else []
        ),
        "sources": {"s0": 0, "s1": 1},
    }


# ---------------------------------------------------------------------------
# Proposers
# ---------------------------------------------------------------------------
def test_heal_prefers_armed_standby_over_respawn():
    policy = RemediationPolicy()
    edges = [_edge("worker_dead")]
    actions = propose_heal(edges, _dead_worker_fleet(), policy)
    kinds = {a.kind for a in actions}
    assert "adopt_standby" in kinds
    adopt = next(a for a in actions if a.kind == "adopt_standby")
    assert adopt.target == {"worker": 0}
    assert adopt.confidence > 0.8

    cold = propose_heal(
        edges, _dead_worker_fleet(with_standby=False), policy
    )
    assert [a.kind for a in cold] == ["respawn"]
    # Same blast radius, lower confidence: adoption outranks respawn.
    assert cold[0].risk > adopt.risk


def test_heal_ignores_healthy_and_lost_slots():
    fleet = {
        "workers": [
            _worker(0),
            _worker(1, alive=False, ready=False, failed=True),
        ],
        "standbys": [],
        "sources": {},
    }
    assert propose_heal([_edge("worker_dead")], fleet, RemediationPolicy()) == []


def test_rebalance_targets_lopsided_placement_only():
    policy = RemediationPolicy()
    even = {
        "workers": [_worker(0, sources=["a"]), _worker(1, sources=["b"])],
        "standbys": [],
        "sources": {"a": 0, "b": 1},
    }
    assert propose_rebalance([_edge("queue_depth_anomaly", "warn")], even, policy) == []
    skewed = {
        "workers": [
            _worker(0, sources=["a", "b", "c"]),
            _worker(1, sources=[]),
        ],
        "standbys": [],
        "sources": {"a": 0, "b": 0, "c": 0},
    }
    actions = propose_rebalance(
        [_edge("queue_depth_anomaly", "warn")], skewed, policy
    )
    assert [a.kind for a in actions] == ["migrate_source"]
    assert actions[0].target["to"] == 1


def test_scale_is_opt_in_and_respects_the_cap():
    fleet = {
        "workers": [_worker(0), _worker(1)],
        "standbys": [],
        "sources": {},
    }
    edges = [_edge("slo_decide_p99")]
    assert propose_scale(edges, fleet, RemediationPolicy()) == []
    permissive = RemediationPolicy(allow_scale=True, max_workers=2)
    assert propose_scale(edges, fleet, permissive) == []
    roomy = RemediationPolicy(allow_scale=True, max_workers=4)
    actions = propose_scale(edges, fleet, roomy)
    assert [a.kind for a in actions] == ["add_worker"]


def test_shed_is_opt_in():
    fleet = {
        "workers": [_worker(0, apps=["laggard", "ok"])],
        "standbys": [],
        "sources": {},
    }
    edges = [_edge("overflow_drops")]
    assert propose_shed(edges, fleet, RemediationPolicy()) == []
    actions = propose_shed(
        edges, fleet, RemediationPolicy(allow_shed=True)
    )
    assert [a.kind for a in actions] == ["shed_load"]


# ---------------------------------------------------------------------------
# Risk model
# ---------------------------------------------------------------------------
def test_risk_is_blast_radius_weighted_by_doubt():
    sure = Action("x", {}, "r", blast_radius=0.5, confidence=1.0)
    risky = Action("x", {}, "r", blast_radius=0.5, confidence=0.0)
    assert sure.risk == 0.0
    assert risky.risk == 0.5
    assert Action("x", {}, "r", blast_radius=0.0, confidence=0.0).risk == 0.0


def test_policy_validation():
    with pytest.raises(ValueError):
        RemediationPolicy(max_risk=1.5)
    with pytest.raises(ValueError):
        RemediationPolicy(actions_per_window=0)
    with pytest.raises(ValueError):
        RemediationPolicy(window_s=0)


# ---------------------------------------------------------------------------
# The loop end-to-end (fake cluster, real pipeline)
# ---------------------------------------------------------------------------
def _loop(cluster, policy=None, events=None, clock=None):
    kwargs = {"policy": policy or RemediationPolicy(), "events": events}
    if clock is not None:
        kwargs["clock"] = clock
    return RemediationLoop(cluster, None, **kwargs)


def _kinds(events):
    return [record["kind"] for record in events.since(0)]


def test_incident_runs_full_chain_and_adopts():
    async def run():
        events = EventLog()
        cluster = FakeCluster(_dead_worker_fleet())
        loop = _loop(cluster, events=events)
        loop.attach()
        assert cluster.defer_death_handling is True
        loop.submit([_edge("worker_dead")])
        await asyncio.sleep(0.05)
        await loop.close()
        assert cluster.defer_death_handling is False
        return cluster.calls, _kinds(events), loop

    calls, kinds, loop = asyncio.run(run())
    # Standby adoption won the ranking; exactly one actuation ran.
    assert calls == [("heal", 0, True)]
    assert "remediation_proposed" in kinds
    assert "remediation_scheduled" in kinds
    assert "remediation_executed" in kinds
    assert loop.executed == 1 and loop.failed == 0


def test_risk_gate_blocks_wide_blast_low_confidence_actions():
    async def run():
        events = EventLog()
        cluster = FakeCluster(_dead_worker_fleet(with_standby=False))
        # A policy so strict even a 1/2-fleet respawn exceeds it.
        loop = _loop(
            cluster, policy=RemediationPolicy(max_risk=0.05), events=events
        )
        loop.attach()
        loop.submit([_edge("worker_dead")])
        await asyncio.sleep(0.05)
        await loop.close()
        return cluster.calls, events.since(0)

    calls, records = asyncio.run(run())
    assert calls == []  # nothing actuated
    skipped = [r for r in records if r["kind"] == "remediation_skipped"]
    assert skipped and skipped[0]["why"] == "risk_gated"


def test_cooldown_and_budget_bound_actuation_frequency():
    async def run():
        now = {"t": 0.0}
        events = EventLog()
        cluster = FakeCluster(_dead_worker_fleet())
        policy = RemediationPolicy(
            cooldown_s=100.0, actions_per_window=2, window_s=1000.0
        )
        loop = _loop(cluster, policy=policy, events=events, clock=lambda: now["t"])
        loop.attach()

        def kill():
            for worker in cluster.fleet["workers"]:
                if worker["index"] == 0:
                    worker["alive"] = worker["ready"] = False

        loop.submit([_edge("worker_dead")])
        await asyncio.sleep(0.05)
        # Same slot dies again inside the cooldown: the identical action
        # is proposed but skipped; nothing else qualifies.
        kill()
        loop.submit([_edge("worker_dead")])
        await asyncio.sleep(0.05)
        # Past the cooldown the heal runs again...
        now["t"] = 200.0
        kill()
        loop.submit([_edge("worker_dead")])
        await asyncio.sleep(0.05)
        # ...but the window budget (2 actions) is now spent.
        now["t"] = 400.0
        kill()
        loop.submit([_edge("worker_dead")])
        await asyncio.sleep(0.05)
        await loop.close()
        return cluster.calls, events.since(0)

    calls, records = asyncio.run(run())
    assert calls == [("heal", 0, True), ("heal", 0, True)]
    reasons = [
        r["why"] for r in records if r["kind"] == "remediation_skipped"
    ]
    assert "cooldown" in reasons and "budget_exhausted" in reasons


def test_preconditions_catch_stale_proposals():
    async def run():
        events = EventLog()
        # The verdict edge races the slot healing on its own: by the
        # time the loop looks, the worker is healthy again.
        cluster = FakeCluster(
            {
                "workers": [_worker(0), _worker(1)],
                "standbys": [],
                "sources": {},
            }
        )
        loop = _loop(cluster, events=events)
        loop.attach()
        loop.submit(
            [
                (
                    Verdict(name="worker_dead", status="critical", signal="x"),
                    "ok",
                )
            ]
        )
        await asyncio.sleep(0.05)
        await loop.close()
        return cluster.calls

    assert asyncio.run(run()) == []


def test_post_verification_flags_unachieved_goals():
    async def run():
        events = EventLog()

        class StubbornCluster(FakeCluster):
            async def heal_worker(self, index, *, prefer_standby=True):
                self.calls.append(("heal", index, prefer_standby))
                return "adopted"  # claims success, changes nothing

        cluster = StubbornCluster(_dead_worker_fleet())
        loop = _loop(cluster, events=events)
        loop.attach()
        loop.submit([_edge("worker_dead")])
        await asyncio.sleep(0.05)
        await loop.close()
        return _kinds(events), loop

    kinds, loop = asyncio.run(run())
    assert "remediation_unverified" in kinds
    assert loop.failed == 1


def test_loop_survives_actuator_exceptions():
    async def run():
        events = EventLog()

        class BrokenCluster(FakeCluster):
            async def heal_worker(self, index, *, prefer_standby=True):
                raise RuntimeError("boom")

        cluster = BrokenCluster(_dead_worker_fleet())
        loop = _loop(cluster, events=events)
        loop.attach()
        loop.submit([_edge("worker_dead")])
        await asyncio.sleep(0.05)
        # The loop is still alive and handles the next incident.
        cluster.fleet["workers"][0]["alive"] = False
        assert not loop._task.done()
        await loop.close()
        return _kinds(events), loop

    kinds, loop = asyncio.run(run())
    assert "remediation_failed" in kinds
    assert loop.failed == 1
