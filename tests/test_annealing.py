"""Unit tests for the simulated-annealing hitting-set solver."""

import random

import pytest

from repro.core.annealing import anneal_hitting_set
from repro.core.candidates import CandidateSet
from repro.core.hitting_set import exact_minimum_hitting_set, greedy_hitting_set
from tests.conftest import make_tuples


def _set(name, items, degree=1):
    cs = CandidateSet(name)
    for item in items:
        cs.add(item)
    cs.degree = degree
    cs.close()
    return cs


def _random_instance(seed, n_sets=8, universe=16, set_size=4):
    rng = random.Random(seed)
    tuples = make_tuples([float(i) for i in range(universe)])
    sets = []
    for index in range(n_sets):
        members = rng.sample(tuples, set_size)
        sets.append(_set(f"s{index}", members))
    return sets


class TestAnnealing:
    def test_hits_every_set(self):
        sets = _random_instance(seed=1)
        selection = anneal_hitting_set(sets, rng=random.Random(1))
        for cs in sets:
            chosen = {t.seq for t in selection.assignments[cs.set_id]}
            assert chosen & {t.seq for t in cs.tuples}

    def test_assignments_match_chosen(self):
        sets = _random_instance(seed=2)
        selection = anneal_hitting_set(sets, rng=random.Random(2))
        assigned = {t.seq for picks in selection.assignments.values() for t in picks}
        assert assigned == {t.seq for t in selection.chosen}

    def test_single_member_sets(self):
        items = make_tuples([1.0, 2.0])
        sets = [_set("a", [items[0]]), _set("b", [items[1]])]
        selection = anneal_hitting_set(sets, rng=random.Random(0))
        assert selection.output_size == 2

    def test_deterministic_with_seeded_rng(self):
        sets = _random_instance(seed=3)
        first = anneal_hitting_set(sets, rng=random.Random(7))
        second = anneal_hitting_set(sets, rng=random.Random(7))
        assert [t.seq for t in first.chosen] == [t.seq for t in second.chosen]

    def test_rejects_multi_degree(self):
        cs = _set("a", make_tuples([1.0, 2.0]), degree=2)
        with pytest.raises(ValueError, match="degree-1"):
            anneal_hitting_set([cs])

    def test_rejects_empty_set(self):
        with pytest.raises(ValueError, match="no eligible"):
            anneal_hitting_set([CandidateSet("empty")])

    def test_finds_optimal_on_small_instances(self):
        """With enough iterations, annealing reaches the optimum the
        exact solver certifies, on small instances."""
        for seed in range(4):
            sets = _random_instance(seed=seed, n_sets=5, universe=10, set_size=3)
            exact = exact_minimum_hitting_set(sets)
            annealed = anneal_hitting_set(
                sets, iterations=4000, rng=random.Random(seed)
            )
            assert annealed.output_size <= exact.output_size + 1

    def test_never_exceeds_set_count(self):
        sets = _random_instance(seed=9)
        selection = anneal_hitting_set(sets, rng=random.Random(9))
        assert selection.output_size <= len(sets)

    def test_the_papers_timeliness_argument(self):
        """Section 2.4.4: greedy is the timelier choice.  On a mid-sized
        instance, greedy must not be slower than annealing while staying
        within one tuple of its quality."""
        import time

        sets = _random_instance(seed=5, n_sets=30, universe=60, set_size=5)
        started = time.perf_counter()
        greedy = greedy_hitting_set(sets)
        greedy_s = time.perf_counter() - started
        started = time.perf_counter()
        annealed = anneal_hitting_set(sets, iterations=2000, rng=random.Random(5))
        anneal_s = time.perf_counter() - started
        assert greedy_s < anneal_s
        assert greedy.output_size <= annealed.output_size + 2
