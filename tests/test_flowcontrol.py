"""Unit tests for input-buffer flow control (section 4.8)."""

import pytest

from repro.net.flowcontrol import FlowControlledBuffer
from tests.conftest import make_tuples


class TestConstruction:
    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            FlowControlledBuffer(capacity=0)

    def test_policy_validated(self):
        with pytest.raises(ValueError):
            FlowControlledBuffer(capacity=1, policy="yolo")

    def test_stride_validated(self):
        with pytest.raises(ValueError):
            FlowControlledBuffer(capacity=1, policy="sample", sample_stride=0)


class TestDropTail:
    def test_admits_until_full(self):
        items = make_tuples([1.0, 2.0, 3.0])
        buffer = FlowControlledBuffer(capacity=2)
        assert buffer.offer(items[0])
        assert buffer.offer(items[1])
        assert not buffer.offer(items[2])
        assert buffer.stats.shed == 1
        assert buffer.stats.admitted == 2
        assert len(buffer) == 2

    def test_fifo_order(self):
        items = make_tuples([1.0, 2.0])
        buffer = FlowControlledBuffer(capacity=2)
        buffer.offer(items[0])
        buffer.offer(items[1])
        assert buffer.take() == items[0]
        assert buffer.take() == items[1]
        assert buffer.take() is None

    def test_drains_then_admits(self):
        items = make_tuples([1.0, 2.0, 3.0])
        buffer = FlowControlledBuffer(capacity=1)
        buffer.offer(items[0])
        buffer.take()
        assert buffer.offer(items[1])


class TestDropRandom:
    def test_new_tuple_always_admitted(self):
        items = make_tuples([float(i) for i in range(10)])
        buffer = FlowControlledBuffer(capacity=3, policy="drop_random", seed=5)
        for item in items:
            assert buffer.offer(item)
        assert len(buffer) == 3
        assert buffer.stats.shed == 7
        # The newest tuple always survives a random-drop admission.
        assert items[-1] in buffer.drain()


class TestSampling:
    def test_every_kth_congested_arrival_admitted(self):
        items = make_tuples([float(i) for i in range(7)])
        buffer = FlowControlledBuffer(capacity=2, policy="sample", sample_stride=2)
        buffer.offer(items[0])
        buffer.offer(items[1])
        admitted = [buffer.offer(item) for item in items[2:]]
        assert admitted == [False, True, False, True, False]

    def test_shed_fraction(self):
        items = make_tuples([float(i) for i in range(10)])
        buffer = FlowControlledBuffer(capacity=2, policy="sample", sample_stride=2)
        for item in items:
            buffer.offer(item)
        assert buffer.stats.shed_fraction > 0.0
        assert buffer.stats.arrived == 10


class TestStats:
    def test_peak_occupancy(self):
        items = make_tuples([1.0, 2.0, 3.0])
        buffer = FlowControlledBuffer(capacity=3)
        for item in items:
            buffer.offer(item)
        buffer.take()
        assert buffer.stats.peak_occupancy == 3

    def test_empty_shed_fraction(self):
        assert FlowControlledBuffer(capacity=1).stats.shed_fraction == 0.0
