"""The paper's worked examples, reproduced end to end.

These tests pin the engine to the exact traces of Figures 2.8 (region-
based greedy), 2.11 (per-candidate-set greedy) and the section 2.1.3
motivating example, using the ten-tuple temperature stream
{0, 35, 29, 45, 50, 59, 80, 97, 100, 112}.
"""

from repro.core.engine import GroupAwareEngine, SelfInterestedEngine
from repro.core.cuts import TimeConstraint
from tests.conftest import paper_group, temps


class TestSelfInterestedBaseline:
    """Section 2.1: the uncoordinated outputs."""

    def test_per_filter_outputs(self, paper_trace):
        result = SelfInterestedEngine(paper_group()).run(paper_trace)
        assert temps(result, "A") == [0, 50, 100]
        assert temps(result, "B") == [0, 45, 97]
        assert temps(result, "C") == [0, 80]

    def test_distinct_output_count(self, paper_trace):
        result = SelfInterestedEngine(paper_group()).run(paper_trace)
        assert result.output_count == 6

    def test_a_and_b_multiplex_to_five(self, paper_trace):
        """Section 2.1.3: 'there are thus 5 tuples to output when
        multiplexing the output streams' of A and B alone."""
        result = SelfInterestedEngine(paper_group()[:2]).run(paper_trace)
        assert result.output_count == 5


class TestRegionBasedGreedy:
    """Figure 2.8."""

    def test_chosen_outputs(self, paper_trace):
        result = GroupAwareEngine(paper_group(), algorithm="region").run(paper_trace)
        assert temps(result, "A") == [0, 50, 100]
        assert temps(result, "B") == [0, 50, 100]
        assert temps(result, "C") == [0, 100]

    def test_three_distinct_tuples(self, paper_trace):
        result = GroupAwareEngine(paper_group(), algorithm="region").run(paper_trace)
        assert result.output_count == 3

    def test_two_regions(self, paper_trace):
        result = GroupAwareEngine(paper_group(), algorithm="region").run(paper_trace)
        assert result.regions_emitted == 2

    def test_compression_ratio_preserved(self, paper_trace):
        """Section 2.3.3: the region-based algorithm does not change a
        filter's compression ratio - one output per reference."""
        group_aware = GroupAwareEngine(paper_group(), algorithm="region").run(paper_trace)
        baseline = SelfInterestedEngine(paper_group()).run(paper_trace)
        for name in ("A", "B", "C"):
            assert len(group_aware.outputs_for(name)) == len(baseline.outputs_for(name))

    def test_recipient_labels(self, paper_trace):
        """Figure 2.8: 0 -> {A,B,C}, 100 -> {A,B,C}, 50 -> {A,B}."""
        result = GroupAwareEngine(paper_group(), algorithm="region").run(paper_trace)
        labels = {}
        for emission in result.emissions:
            value = int(emission.item.value("temp"))
            labels[value] = labels.get(value, frozenset()) | emission.recipients
        assert labels == {
            0: frozenset({"A", "B", "C"}),
            100: frozenset({"A", "B", "C"}),
            50: frozenset({"A", "B"}),
        }


class TestPerCandidateSetGreedy:
    """Figure 2.11."""

    def test_chosen_outputs(self, paper_trace):
        result = GroupAwareEngine(
            paper_group(), algorithm="per_candidate_set"
        ).run(paper_trace)
        assert temps(result, "A") == [0, 50, 100]
        assert temps(result, "B") == [0, 50, 100]
        assert temps(result, "C") == [0, 100]

    def test_three_distinct_tuples(self, paper_trace):
        result = GroupAwareEngine(
            paper_group(), algorithm="per_candidate_set"
        ).run(paper_trace)
        assert result.output_count == 3

    def test_b_decides_50_first_then_a_follows(self, paper_trace):
        """At slot 6 B closes {45, 50} and picks 50 by freshness; at
        slot 7 A's first heuristic makes it follow B's choice."""
        result = GroupAwareEngine(
            paper_group(), algorithm="per_candidate_set"
        ).run(paper_trace)
        decisions_b = result.decisions["B"]
        decisions_a = result.decisions["A"]
        assert decisions_b[1].tuples[0].value("temp") == 50
        assert decisions_a[1].tuples[0].value("temp") == 50
        assert decisions_b[1].decide_ts < decisions_a[1].decide_ts


class TestTimelyCuts:
    """Chapter 3's cut behaviour on the same stream."""

    def test_cut_output_never_worse_than_si(self, paper_trace):
        baseline = SelfInterestedEngine(paper_group()).run(paper_trace)
        for constraint_ms in (20, 30, 40, 60, 100):
            result = GroupAwareEngine(
                paper_group(),
                algorithm="region",
                time_constraint=TimeConstraint(constraint_ms),
            ).run(paper_trace)
            assert result.output_count <= baseline.output_count

    def test_tight_constraint_triggers_cuts(self, paper_trace):
        result = GroupAwareEngine(
            paper_group(),
            algorithm="region",
            time_constraint=TimeConstraint(40),
        ).run(paper_trace)
        assert result.cuts_triggered > 0
        assert result.regions_cut > 0

    def test_loose_constraint_matches_uncut(self, paper_trace):
        uncut = GroupAwareEngine(paper_group(), algorithm="region").run(paper_trace)
        loose = GroupAwareEngine(
            paper_group(),
            algorithm="region",
            time_constraint=TimeConstraint(10_000),
        ).run(paper_trace)
        assert loose.output_count == uncut.output_count
        assert loose.regions_cut == 0

    def test_per_candidate_set_cut(self, paper_trace):
        result = GroupAwareEngine(
            paper_group(),
            algorithm="per_candidate_set",
            time_constraint=TimeConstraint(30),
        ).run(paper_trace)
        assert result.cuts_triggered > 0
        baseline = SelfInterestedEngine(paper_group()).run(paper_trace)
        assert result.output_count <= baseline.output_count
