"""Unit tests for the timeliness models (Chapter 3)."""

import pytest

from repro.core.engine import GroupAwareEngine, SelfInterestedEngine
from repro.timeliness import DelayBreakdown, decompose_delays, input_buffer_delays
from tests.conftest import paper_group


class TestDelayBreakdown:
    def test_total(self):
        breakdown = DelayBreakdown(1.0, 2.0, 3.0, 4.0)
        assert breakdown.total_ms == 10.0


class TestDecompose:
    def test_group_aware_filter_term_dominates(self, paper_trace):
        result = GroupAwareEngine(paper_group()).run(paper_trace)
        breakdown = decompose_delays(result, multicast_overhead_ms=130.0)
        assert breakdown.filter_ms > 0
        assert breakdown.output_buffer_ms == pytest.approx(0.0)
        assert breakdown.multicast_ms == 130.0

    def test_batched_output_moves_delay_to_output_buffer(self, paper_trace):
        from repro.core.output import BatchedOutput

        result = GroupAwareEngine(
            paper_group(),
            algorithm="per_candidate_set",
            output_strategy=BatchedOutput(len(paper_trace)),
        ).run(paper_trace)
        breakdown = decompose_delays(result)
        assert breakdown.output_buffer_ms > 0

    def test_self_interested_no_filter_delay(self, paper_trace):
        result = SelfInterestedEngine(paper_group()).run(paper_trace)
        breakdown = decompose_delays(result)
        assert breakdown.filter_ms == pytest.approx(0.0)

    def test_empty_result(self):
        from repro.core.engine import EngineResult

        breakdown = decompose_delays(EngineResult(), multicast_overhead_ms=7.0)
        assert breakdown.total_ms == 7.0

    def test_decomposition_sums_to_mean_delay(self, paper_trace):
        result = GroupAwareEngine(paper_group()).run(paper_trace)
        breakdown = decompose_delays(result)
        mean_delay = sum(e.delay_ms for e in result.emissions) / len(result.emissions)
        assert breakdown.filter_ms + breakdown.output_buffer_ms == pytest.approx(
            mean_delay
        )


class TestInputBuffer:
    def test_no_congestion_when_service_fast(self):
        arrivals = [0.0, 10.0, 20.0, 30.0]
        delays = input_buffer_delays(arrivals, [1.0] * 4)
        assert delays == [0.0, 0.0, 0.0, 0.0]

    def test_congestion_accumulates(self):
        """Service slower than arrival: the classic Lindley build-up."""
        arrivals = [0.0, 10.0, 20.0, 30.0]
        delays = input_buffer_delays(arrivals, [15.0] * 4)
        assert delays == [0.0, 5.0, 10.0, 15.0]

    def test_queue_drains_during_gaps(self):
        arrivals = [0.0, 10.0, 100.0]
        delays = input_buffer_delays(arrivals, [15.0, 15.0, 1.0])
        assert delays == [0.0, 5.0, 0.0]

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            input_buffer_delays([0.0], [1.0, 2.0])

    def test_negative_service_rejected(self):
        with pytest.raises(ValueError):
            input_buffer_delays([0.0], [-1.0])
