"""Unit tests for the lossy-link multicast extension."""

import pytest

from repro.net.multicast import ScribeMulticast
from repro.net.overlay import OverlayNetwork

NAMES = [f"node{i}" for i in range(8)]


def _multicast(loss_rate, seed=0):
    overlay = OverlayNetwork(NAMES)
    multicast = ScribeMulticast(overlay, loss_rate=loss_rate, seed=seed)
    multicast.create_group("g")
    for index, name in enumerate(NAMES):
        multicast.join("g", f"app{index}", name)
    return multicast


class TestLossyLinks:
    def test_loss_rate_validated(self):
        overlay = OverlayNetwork(NAMES)
        with pytest.raises(ValueError):
            ScribeMulticast(overlay, loss_rate=1.0)
        with pytest.raises(ValueError):
            ScribeMulticast(overlay, loss_rate=-0.1)
        with pytest.raises(ValueError):
            ScribeMulticast(overlay, max_retries=-1)

    def test_no_loss_means_no_retransmissions(self):
        multicast = _multicast(loss_rate=0.0)
        multicast.publish("g", NAMES[0], frozenset({"app3"}), 64, 0.0)
        assert multicast.retransmissions == 0

    def test_loss_costs_bandwidth(self):
        clean = _multicast(loss_rate=0.0)
        lossy = _multicast(loss_rate=0.4, seed=3)
        recipients = frozenset(f"app{i}" for i in range(8))
        clean_receipt = clean.publish("g", NAMES[0], recipients, 64, 0.0)
        lossy_receipt = lossy.publish("g", NAMES[0], recipients, 64, 0.0)
        assert lossy_receipt.link_transmissions > clean_receipt.link_transmissions
        assert lossy.retransmissions > 0

    def test_loss_costs_latency(self):
        clean = _multicast(loss_rate=0.0)
        lossy = _multicast(loss_rate=0.5, seed=4)
        recipients = frozenset(f"app{i}" for i in range(8))
        clean_receipt = clean.publish("g", NAMES[0], recipients, 64, 0.0)
        lossy_receipt = lossy.publish("g", NAMES[0], recipients, 64, 0.0)
        assert max(lossy_receipt.delivery_ms.values()) >= max(
            clean_receipt.delivery_ms.values()
        )

    def test_delivery_still_complete_under_loss(self):
        """Hop-by-hop ARQ: every recipient is still reached."""
        lossy = _multicast(loss_rate=0.6, seed=5)
        recipients = frozenset(f"app{i}" for i in range(8))
        receipt = lossy.publish("g", NAMES[0], recipients, 64, 0.0)
        assert set(receipt.delivery_ms) == recipients

    def test_retry_cap_bounds_attempts(self):
        overlay = OverlayNetwork(NAMES)
        multicast = ScribeMulticast(overlay, loss_rate=0.9, max_retries=2, seed=6)
        assert multicast._hop_attempts() <= 3  # 1 try + 2 retries

    def test_deterministic_given_seed(self):
        first = _multicast(loss_rate=0.3, seed=9)
        second = _multicast(loss_rate=0.3, seed=9)
        recipients = frozenset({"app1", "app5"})
        a = first.publish("g", NAMES[0], recipients, 64, 0.0)
        b = second.publish("g", NAMES[0], recipients, 64, 0.0)
        assert a.link_transmissions == b.link_transmissions
        assert a.delivery_ms == b.delivery_ms


class TestInjectedRng:
    def test_injected_rng_replaces_seed(self):
        import random

        overlay = OverlayNetwork(NAMES)
        shared = random.Random(99)
        multicast = ScribeMulticast(overlay, loss_rate=0.4, seed=0, rng=shared)
        assert multicast._rng is shared

    def test_same_injected_seed_same_retransmission_trace(self):
        import random

        recipients = frozenset(f"app{i}" for i in range(8))

        def run(rng):
            overlay = OverlayNetwork(NAMES)
            multicast = ScribeMulticast(overlay, loss_rate=0.4, rng=rng)
            multicast.create_group("g")
            for index, name in enumerate(NAMES):
                multicast.join("g", f"app{index}", name)
            receipts = [
                multicast.publish("g", NAMES[0], recipients, 64, float(i))
                for i in range(20)
            ]
            return multicast.retransmissions, [
                r.link_transmissions for r in receipts
            ]

        assert run(random.Random(5)) == run(random.Random(5))
