"""Tests for the declarative scenario harness (loader, grader, runner)."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.service.chaos import ChaosOp
from repro.service.loadgen import LoadGenConfig, _RateSchedule
from repro.service.scenario import (
    Scenario,
    ScenarioError,
    grade_scenario,
    load_scenario_file,
    run_scenario,
    scenario_from_dict,
)

MINIMAL = """
[scenario]
name = "minimal"
"""

FULL = """
[scenario]
name = "full"
description = "everything at once"

[load]
source = "random_walk"
size = "tiny"
rate = 120.0
duration_s = 2.0
queue_capacity = 8
overflow = "drop_oldest"
rate_profile = [[0.5, 1.0], [1.0, 3.0]]

[degradation]
levels = ["DC1(value, 4.0, 2.0)", "DC1(value, 16.0, 8.0)"]

[degradation.config]
queue_high_ratio = 0.5
interval_s = 0.05

[[chaos]]
at_s = 0.5
op = "stall_reader"
target = "app0"
duration_s = 0.3

[watch_rules]
[[watch_rules.rule]]
name = "no-drops"
signal = "dropped_tuples"
warn = 1

[verdict]
max_level = 2
max_recovery_s = 4.0
expect_events = ["qos_degraded"]

[verdict.disabled]
require_shed = true
min_shed = 1
"""


def _load(tmp_path: Path, text: str, name="scenario.toml") -> Scenario:
    path = tmp_path / name
    path.write_text(text, encoding="utf-8")
    return load_scenario_file(path)


class TestLoader:
    def test_minimal_scenario(self, tmp_path):
        scenario = _load(tmp_path, MINIMAL)
        assert scenario.name == "minimal"
        assert scenario.chaos_ops == ()
        assert scenario.watch_rules is None
        assert isinstance(scenario.config, LoadGenConfig)

    def test_full_scenario(self, tmp_path):
        scenario = _load(tmp_path, FULL)
        assert scenario.description == "everything at once"
        assert scenario.config.rate == 120.0
        assert scenario.config.rate_profile == ((0.5, 1.0), (1.0, 3.0))
        assert scenario.config.degradation_levels == (
            "DC1(value, 4.0, 2.0)",
            "DC1(value, 16.0, 8.0)",
        )
        assert scenario.config.degradation_config == {
            "queue_high_ratio": 0.5,
            "interval_s": 0.05,
        }
        assert scenario.chaos_ops == (
            ChaosOp(
                at_s=0.5, op="stall_reader",
                target="app0", duration_s=0.3,
            ),
        )
        assert scenario.watch_rules is not None
        assert scenario.verdict["max_level"] == 2
        assert "disabled" not in scenario.verdict
        assert scenario.disabled_verdict == {
            "require_shed": True, "min_shed": 1,
        }

    def test_json_same_shape(self, tmp_path):
        data = {
            "scenario": {"name": "as-json"},
            "load": {"rate": 50.0},
            "chaos": [{"at_s": 1.0, "op": "kill_worker", "target": 1}],
            "verdict": {"max_level": 1},
        }
        scenario = _load(tmp_path, json.dumps(data), name="scenario.json")
        assert scenario.name == "as-json"
        assert scenario.chaos_ops[0].op == "kill_worker"
        assert scenario.chaos_ops[0].target == "1"

    def test_missing_scenario_table(self, tmp_path):
        with pytest.raises(ScenarioError, match=r"missing required \[scenario\]"):
            _load(tmp_path, "[load]\nrate = 1.0\n")

    def test_missing_name(self):
        with pytest.raises(ScenarioError, match="needs a string 'name'"):
            scenario_from_dict({"scenario": {"description": "nameless"}})

    def test_unknown_top_level_key(self):
        with pytest.raises(ScenarioError, match="unknown key"):
            scenario_from_dict({"scenario": {"name": "x"}, "chaso": []})

    def test_unknown_load_key(self):
        with pytest.raises(ScenarioError, match="unknown key"):
            scenario_from_dict(
                {"scenario": {"name": "x"}, "load": {"out_dir": "/tmp/x"}}
            )

    def test_bad_load_value_names_the_section(self):
        with pytest.raises(ScenarioError, match="load:"):
            scenario_from_dict(
                {"scenario": {"name": "x"}, "load": {"rate": -5.0}}
            )

    def test_rate_profile_shape_checked(self):
        for bad in ("fast", [[1.0]], [[1.0, 2.0, 3.0]], [1.0]):
            with pytest.raises(ScenarioError, match="rate_profile"):
                scenario_from_dict(
                    {
                        "scenario": {"name": "x"},
                        "load": {"rate_profile": bad},
                    }
                )

    def test_degradation_levels_must_be_spec_strings(self):
        for bad in ([], [1.0], "DC1(value, 4, 2)"):
            with pytest.raises(ScenarioError, match="degradation.levels"):
                scenario_from_dict(
                    {
                        "scenario": {"name": "x"},
                        "degradation": {"levels": bad},
                    }
                )

    def test_chaos_entry_validation(self):
        with pytest.raises(ScenarioError, match="needs 'at_s' and 'op'"):
            scenario_from_dict(
                {"scenario": {"name": "x"}, "chaos": [{"at_s": 1.0}]}
            )
        with pytest.raises(ScenarioError, match="unknown chaos op"):
            scenario_from_dict(
                {
                    "scenario": {"name": "x"},
                    "chaos": [{"at_s": 1.0, "op": "set_on_fire"}],
                }
            )
        with pytest.raises(ScenarioError, match="unknown key"):
            scenario_from_dict(
                {
                    "scenario": {"name": "x"},
                    "chaos": [{"at_s": 1.0, "op": "kill_worker", "pid": 4}],
                }
            )

    def test_verdict_key_whitelists(self):
        with pytest.raises(ScenarioError, match="unknown key"):
            scenario_from_dict(
                {"scenario": {"name": "x"}, "verdict": {"max_lvl": 1}}
            )
        with pytest.raises(ScenarioError, match="unknown key"):
            scenario_from_dict(
                {
                    "scenario": {"name": "x"},
                    "verdict": {"disabled": {"require_she": True}},
                }
            )
        with pytest.raises(ScenarioError, match="expect_events"):
            scenario_from_dict(
                {
                    "scenario": {"name": "x"},
                    "verdict": {"expect_events": "qos_degraded"},
                }
            )

    def test_embedded_watch_rules_errors_surface_as_scenario_errors(self):
        with pytest.raises(ScenarioError, match="watch_rules"):
            scenario_from_dict(
                {
                    "scenario": {"name": "x"},
                    "watch_rules": {"rule": [{"name": "r"}]},  # no signal
                }
            )

    def test_shipped_examples_load(self):
        examples = Path(__file__).parent.parent / "examples" / "scenarios"
        files = sorted(examples.glob("*.toml"))
        assert len(files) >= 2
        for path in files:
            scenario = load_scenario_file(path)
            assert scenario.name
            assert scenario.config.degradation_levels


class TestChaosOpValidation:
    def test_worker_target_must_be_an_index(self):
        with pytest.raises(ValueError, match="worker index"):
            ChaosOp(at_s=0.0, op="kill_worker", target="worker-zero")

    def test_windowed_ops_need_duration(self):
        for op in ("stop_worker", "partition", "stall_reader"):
            with pytest.raises(ValueError, match="duration_s"):
                ChaosOp(at_s=0.0, op=op, target="0")

    def test_negative_offset_rejected(self):
        with pytest.raises(ValueError, match="at_s"):
            ChaosOp(at_s=-1.0, op="kill_worker")

    def test_stall_reader_takes_app_names(self):
        op = ChaosOp(
            at_s=0.5, op="stall_reader", target="app1", duration_s=1.0
        )
        assert op.target == "app1"


class TestRateSchedule:
    def test_empty_profile_is_constant_rate(self):
        schedule = _RateSchedule(10.0, ())
        assert schedule.time_for(0) == 0.0
        assert schedule.time_for(25) == pytest.approx(2.5)
        assert schedule.count_until(2.5) == pytest.approx(25.0)

    def test_piecewise_segments(self):
        # 10/s base: 2x for 1s (20 tuples), 0.5x for 1s (5 tuples),
        # then the base rate resumes.
        schedule = _RateSchedule(10.0, ((1.0, 2.0), (1.0, 0.5)))
        assert schedule.time_for(0) == 0.0
        assert schedule.time_for(10) == pytest.approx(0.5)
        assert schedule.time_for(20) == pytest.approx(1.0)
        assert schedule.time_for(24) == pytest.approx(1.8)
        assert schedule.time_for(25) == pytest.approx(2.0)
        assert schedule.time_for(35) == pytest.approx(3.0)
        assert schedule.count_until(0.5) == pytest.approx(10.0)
        assert schedule.count_until(1.5) == pytest.approx(22.5)
        assert schedule.count_until(3.0) == pytest.approx(35.0)

    def test_time_for_and_count_until_are_inverses(self):
        schedule = _RateSchedule(7.0, ((0.4, 3.0), (1.1, 0.25), (2.0, 1.5)))
        for index in range(0, 40, 3):
            assert schedule.count_until(
                schedule.time_for(index)
            ) == pytest.approx(float(index))


def _scenario(**verdict) -> Scenario:
    """A graded scenario over the tiny subscriber set (2 apps)."""
    return Scenario(
        name="synthetic",
        config=LoadGenConfig(
            size="tiny",
            duration_s=1.0,
            degradation_levels=("DC1(value, 4.0, 2.0)",),
        ),
        verdict=dict(verdict),
        disabled_verdict={"require_shed": True, "min_shed": 1},
    )


def _summary(**overrides) -> dict:
    base = {
        "final_subscriptions": [
            ["app0", "DC1(value, 1.0, 0.5)"],
            ["app1", "DC1(value, 2.0, 1.0)"],
        ],
        "delivered_tuples": 100,
        "clean_shutdown": True,
        "errors": [],
        "qos": {
            "max_level": 1,
            "final_level_by_app": {"app0": 0, "app1": 0},
            "recovery_time_s": 0.8,
        },
        "delivered_digest": {
            "app0": {"count": 50, "digest": "aa"},
            "app1": {"count": 50, "digest": "bb"},
        },
    }
    base.update(overrides)
    return base


def _by_name(manifest: dict) -> dict:
    return {c["name"]: c for c in manifest["checks"]}


class TestGrading:
    def test_healthy_summary_passes(self):
        manifest = grade_scenario(
            _scenario(max_level=1, max_recovery_s=2.0), _summary()
        )
        assert manifest["passed"], manifest["checks"]
        names = set(_by_name(manifest))
        assert {
            "subscribers_retained",
            "degradation_bounded",
            "recovered_to_level_0",
            "recovery_within_budget",
            "digests_recorded",
            "delivered",
            "clean_shutdown",
        } <= names

    def test_shed_subscriber_fails_retention(self):
        summary = _summary(
            final_subscriptions=[["app0", "DC1(value, 1.0, 0.5)"]]
        )
        manifest = grade_scenario(_scenario(), summary)
        check = _by_name(manifest)["subscribers_retained"]
        assert not check["ok"]
        assert "app1" in check["detail"]
        assert not manifest["passed"]

    def test_level_bound_enforced(self):
        summary = _summary(qos=dict(_summary()["qos"], max_level=2))
        manifest = grade_scenario(_scenario(max_level=1), summary)
        check = _by_name(manifest)["degradation_bounded"]
        assert not check["ok"]
        assert (check["value"], check["bound"]) == (2, 1)

    def test_stuck_session_fails_recovery(self):
        qos = dict(_summary()["qos"])
        qos["final_level_by_app"] = {"app0": 0, "app1": 1}
        manifest = grade_scenario(_scenario(), _summary(qos=qos))
        check = _by_name(manifest)["recovered_to_level_0"]
        assert not check["ok"]
        assert "app1" in check["detail"]

    def test_no_round_trip_fails_recovery_budget(self):
        qos = dict(_summary()["qos"], recovery_time_s=None)
        manifest = grade_scenario(
            _scenario(max_recovery_s=2.0), _summary(qos=qos)
        )
        assert not _by_name(manifest)["recovery_within_budget"]["ok"]

    def test_expected_events_need_an_event_log(self, tmp_path):
        scenario = _scenario(expect_events=["qos_degraded"])
        # No out_dir: the check must fail loudly, not silently pass.
        manifest = grade_scenario(scenario, _summary())
        assert not _by_name(manifest)["events_observed"]["ok"]
        # With a log that has the kind, it passes.
        (tmp_path / "events.jsonl").write_text(
            json.dumps({"kind": "qos_degraded"}) + "\n"
            + json.dumps({"kind": "qos_recovered"}) + "\n",
            encoding="utf-8",
        )
        manifest = grade_scenario(scenario, _summary(), out_dir=tmp_path)
        assert _by_name(manifest)["events_observed"]["ok"]
        # A missing kind names itself in the detail.
        scenario = _scenario(expect_events=["worker_respawn"])
        manifest = grade_scenario(scenario, _summary(), out_dir=tmp_path)
        check = _by_name(manifest)["events_observed"]
        assert not check["ok"] and "worker_respawn" in check["detail"]

    def test_missing_digest_fails(self):
        digests = {"app0": {"count": 50, "digest": "aa"}}
        manifest = grade_scenario(
            _scenario(), _summary(delivered_digest=digests)
        )
        check = _by_name(manifest)["digests_recorded"]
        assert not check["ok"] and "app1" in check["detail"]

    def test_chaos_must_all_apply(self):
        scenario = Scenario(
            name="chaotic",
            config=LoadGenConfig(size="tiny", duration_s=1.0),
            chaos_ops=(ChaosOp(at_s=0.1, op="kill_worker"),),
        )
        summary = _summary(
            chaos_applied=[
                {"at_s": 0.1, "op": "kill_worker", "ok": False,
                 "error": "no live process"}
            ]
        )
        manifest = grade_scenario(scenario, summary)
        check = _by_name(manifest)["chaos_applied"]
        assert not check["ok"] and "no live process" in check["detail"]

    def test_disabled_mode_grades_shedding(self):
        scenario = _scenario()
        # Nobody shed: the control run proved nothing -> fail.
        manifest = grade_scenario(scenario, _summary(), degradation=False)
        assert not manifest["passed"]
        assert not _by_name(manifest)["subscribers_shed"]["ok"]
        # One shed subscriber satisfies min_shed=1.
        summary = _summary(
            final_subscriptions=[["app0", "DC1(value, 1.0, 0.5)"]],
            clean_shutdown=False,
        )
        manifest = grade_scenario(scenario, summary, degradation=False)
        assert manifest["passed"], manifest["checks"]
        # Off-mode runs shed sessions, so clean_shutdown is not graded
        # unless explicitly requested.
        assert "clean_shutdown" not in _by_name(manifest)

    def test_dirty_shutdown_fails_on_mode(self):
        summary = _summary(clean_shutdown=False, errors=["1 task leaked"])
        manifest = grade_scenario(_scenario(), summary)
        check = _by_name(manifest)["clean_shutdown"]
        assert not check["ok"] and "task leaked" in check["detail"]


class TestRunScenario:
    def test_end_to_end_manifest_and_artifacts(self, tmp_path):
        """A short real run: manifest passes, verdict.json lands next to
        the loadgen artifacts, off-mode grades against [verdict.disabled]."""
        scenario = scenario_from_dict(
            {
                "scenario": {"name": "smoke"},
                "load": {
                    "size": "tiny",
                    "rate": 80.0,
                    "duration_s": 1.0,
                    "seed": 3,
                    "metrics_interval_s": 0.2,
                },
                "verdict": {
                    "min_delivered": 1,
                    "disabled": {"require_shed": False},
                },
            }
        )
        out = tmp_path / "run"
        manifest = run_scenario(scenario, out_dir=out)
        assert manifest["passed"], manifest["checks"]
        assert manifest["schema"] == "repro-scenario/v1"
        assert (out / "verdict.json").exists()
        assert (out / "summary.json").exists()
        on_disk = json.loads((out / "verdict.json").read_text())
        assert on_disk["scenario"] == "smoke"
        # Digests were collected even though verify= is off.
        digests = manifest["summary"]["delivered_digest"]
        assert digests and all(d["count"] > 0 for d in digests.values())

        off = run_scenario(scenario, degradation=False)
        assert off["degradation"] is False
        assert off["passed"], off["checks"]
