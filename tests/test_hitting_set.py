"""Unit tests for the hitting-set solvers (sections 2.2.4 and 5.3)."""

import pytest

from repro.core.candidates import CandidateSet
from repro.core.hitting_set import (
    exact_minimum_hitting_set,
    greedy_hitting_set,
    harmonic,
)
from tests.conftest import make_tuples


def _set(name, items, degree=1, eligible=None):
    cs = CandidateSet(name)
    for item in items:
        cs.add(item)
    cs.degree = degree
    if eligible is not None:
        cs.restrict_eligible(eligible)
    cs.close()
    return cs


def _hits(selection, candidate_set):
    chosen = {t.seq for t in selection.assignments[candidate_set.set_id]}
    return sum(1 for t in candidate_set.eligible_tuples if t.seq in chosen)


class TestGreedyHittingSet:
    def test_single_set(self):
        items = make_tuples([1.0, 2.0])
        selection = greedy_hitting_set([_set("a", items)])
        assert selection.output_size == 1

    def test_paper_region_two(self):
        """Figure 2.8's region 2: greedy picks 100 then 50."""
        items = make_tuples([0, 35, 29, 45, 50, 59, 80, 97, 100, 112], interval_ms=10)
        by_value = {int(t.value("value")): t for t in items}
        sets = [
            _set("A2", [by_value[45], by_value[50], by_value[59]]),
            _set("A3", [by_value[97], by_value[100]]),
            _set("B2", [by_value[45], by_value[50]]),
            _set("B3", [by_value[97], by_value[100]]),
            _set("C2", [by_value[59], by_value[80], by_value[97], by_value[100]]),
        ]
        selection = greedy_hitting_set(sets)
        chosen_values = [int(t.value("value")) for t in selection.chosen]
        assert chosen_values == [100, 50]

    def test_every_set_hit(self):
        items = make_tuples(list(range(8)))
        sets = [
            _set("a", items[0:3]),
            _set("b", items[2:5]),
            _set("c", items[5:8]),
        ]
        selection = greedy_hitting_set(sets)
        for candidate_set in sets:
            assert _hits(selection, candidate_set) >= 1

    def test_tie_break_prefers_freshest(self):
        items = make_tuples([1.0, 2.0])
        selection = greedy_hitting_set([_set("a", items)])
        assert selection.chosen == [items[1]]

    def test_shared_tuple_is_preferred(self):
        items = make_tuples(list(range(5)))
        sets = [
            _set("a", [items[0], items[2]]),
            _set("b", [items[1], items[2]]),
            _set("c", [items[2], items[3]]),
        ]
        selection = greedy_hitting_set(sets)
        assert selection.output_size == 1
        assert selection.chosen[0] == items[2]

    def test_assignments_cover_chosen(self):
        items = make_tuples(list(range(6)))
        sets = [_set("a", items[0:3]), _set("b", items[3:6])]
        selection = greedy_hitting_set(sets)
        assigned = {t.seq for picks in selection.assignments.values() for t in picks}
        assert assigned == {t.seq for t in selection.chosen}

    def test_empty_set_raises(self):
        with pytest.raises(ValueError, match="no eligible"):
            greedy_hitting_set([CandidateSet("empty")])

    def test_eligibility_respected(self):
        items = make_tuples(list(range(4)))
        constrained = _set("a", items[0:3], eligible=[items[0]])
        other = _set("b", items[1:4])
        selection = greedy_hitting_set([constrained, other])
        assert selection.assignments[constrained.set_id] == [items[0]]


class TestMultiDegree:
    def test_degree_satisfied(self):
        items = make_tuples(list(range(6)))
        cs = _set("a", items, degree=3)
        selection = greedy_hitting_set([cs])
        assert _hits(selection, cs) == 3

    def test_degree_clamped_to_size(self):
        items = make_tuples([1.0, 2.0])
        cs = _set("a", items, degree=5)
        selection = greedy_hitting_set([cs])
        assert _hits(selection, cs) == 2

    def test_shared_tuples_count_for_both_sets(self):
        items = make_tuples(list(range(4)))
        a = _set("a", items, degree=2)
        b = _set("b", items[1:3], degree=2)
        selection = greedy_hitting_set([a, b])
        # Two picks inside the overlap satisfy both sets.
        assert selection.output_size == 2
        assert _hits(selection, a) >= 2
        assert _hits(selection, b) == 2

    def test_distinct_tuples_per_set(self):
        """A set's degree must be met by distinct tuples."""
        items = make_tuples(list(range(3)))
        cs = _set("a", items, degree=3)
        selection = greedy_hitting_set([cs])
        picks = selection.assignments[cs.set_id]
        assert len({t.seq for t in picks}) == 3


class TestExactSolver:
    def test_minimal_solution(self):
        items = make_tuples(list(range(4)))
        sets = [
            _set("a", [items[0], items[1]]),
            _set("b", [items[1], items[2]]),
            _set("c", [items[2], items[3]]),
        ]
        selection = exact_minimum_hitting_set(sets)
        assert selection.output_size == 2  # {1, 2} hits all three

    def test_hits_everything(self):
        items = make_tuples(list(range(6)))
        sets = [_set("a", items[0:2]), _set("b", items[2:4]), _set("c", items[4:6])]
        selection = exact_minimum_hitting_set(sets)
        for cs in sets:
            assert _hits(selection, cs) == 1

    def test_rejects_multi_degree(self):
        cs = _set("a", make_tuples([1.0, 2.0]), degree=2)
        with pytest.raises(ValueError, match="degree-1"):
            exact_minimum_hitting_set([cs])

    def test_rejects_large_universe(self):
        items = make_tuples(list(range(30)))
        with pytest.raises(ValueError, match="max_universe"):
            exact_minimum_hitting_set([_set("a", items)])

    def test_greedy_never_beats_exact(self):
        items = make_tuples(list(range(8)))
        sets = [
            _set("a", items[0:4]),
            _set("b", items[2:6]),
            _set("c", items[4:8]),
            _set("d", [items[1], items[5]]),
        ]
        greedy = greedy_hitting_set(sets)
        exact = exact_minimum_hitting_set(sets)
        assert exact.output_size <= greedy.output_size


class TestHarmonic:
    def test_values(self):
        assert harmonic(1) == 1.0
        assert harmonic(2) == pytest.approx(1.5)
        assert harmonic(4) == pytest.approx(1 + 0.5 + 1 / 3 + 0.25)
