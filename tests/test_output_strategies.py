"""Unit tests for output strategies (section 3.4)."""

import pytest

from repro.core.engine import GroupAwareEngine
from repro.core.output import (
    BatchedOutput,
    Decision,
    Emission,
    PerCandidateSetOutput,
    RegionOutput,
    merge_decisions,
)
from repro.core.regions import Region
from repro.core.candidates import CandidateSet
from tests.conftest import make_tuples, paper_group


def _decision(name, items, set_id=None, decide_ts=0.0):
    return Decision(
        filter_name=name,
        set_id=set_id if set_id is not None else id(items) % 100000,
        tuples=tuple(items),
        decide_ts=decide_ts,
    )


class TestMergeDecisions:
    def test_recipients_merged_per_tuple(self):
        items = make_tuples([1.0])
        emissions = merge_decisions(
            [_decision("A", items), _decision("B", items, set_id=2)], emit_ts=50.0
        )
        assert len(emissions) == 1
        assert emissions[0].recipients == frozenset({"A", "B"})
        assert emissions[0].emit_ts == 50.0

    def test_order_by_timestamp(self):
        items = make_tuples([1.0, 2.0, 3.0])
        emissions = merge_decisions(
            [_decision("A", [items[2], items[0]]), _decision("B", [items[1]], set_id=2)],
            emit_ts=99.0,
        )
        assert [e.item.seq for e in emissions] == [0, 1, 2]

    def test_earliest_decide_ts_kept(self):
        items = make_tuples([1.0])
        emissions = merge_decisions(
            [
                _decision("A", items, set_id=1, decide_ts=30.0),
                _decision("B", items, set_id=2, decide_ts=10.0),
            ],
            emit_ts=50.0,
        )
        assert emissions[0].decide_ts == 10.0

    def test_empty(self):
        assert merge_decisions([], emit_ts=0.0) == []

    def test_emission_delay(self):
        items = make_tuples([1.0])
        emission = Emission(items[0], frozenset({"A"}), emit_ts=70.0, decide_ts=60.0)
        assert emission.delay_ms == 70.0


def _region_of(items, name="f"):
    cs = CandidateSet(name)
    for item in items:
        cs.add(item)
    cs.close()
    return Region(sets=[cs]), cs


class TestRegionOutput:
    def test_buffers_until_region_close(self):
        items = make_tuples([1.0, 2.0])
        region, cs = _region_of(items)
        strategy = RegionOutput()
        assert strategy.on_decisions(
            [_decision("A", [items[0]], set_id=cs.set_id)], now=10.0
        ) == []
        released = strategy.on_region_close(region, now=20.0)
        assert len(released) == 1
        assert released[0].emit_ts == 20.0

    def test_unrelated_decisions_stay_buffered(self):
        items = make_tuples([1.0, 2.0])
        region, cs = _region_of([items[0]])
        strategy = RegionOutput()
        strategy.on_decisions([_decision("A", [items[1]], set_id=999)], now=5.0)
        assert strategy.on_region_close(region, now=10.0) == []
        flushed = strategy.flush(now=30.0)
        assert len(flushed) == 1

    def test_flush_releases_everything(self):
        items = make_tuples([1.0])
        strategy = RegionOutput()
        strategy.on_decisions([_decision("A", items, set_id=1)], now=5.0)
        assert len(strategy.flush(now=9.0)) == 1
        assert strategy.flush(now=10.0) == []


class TestPerCandidateSetOutput:
    def test_immediate_release(self):
        items = make_tuples([1.0])
        strategy = PerCandidateSetOutput()
        released = strategy.on_decisions([_decision("A", items)], now=3.0)
        assert len(released) == 1
        assert released[0].emit_ts == 3.0

    def test_flush_empty(self):
        assert PerCandidateSetOutput().flush(now=1.0) == []


class TestBatchedOutput:
    def test_releases_every_batch(self):
        items = make_tuples([1.0, 2.0, 3.0])
        strategy = BatchedOutput(batch_size=2)
        strategy.on_decisions([_decision("A", [items[0]])], now=0.0)
        assert strategy.on_input(now=0.0) == []
        released = strategy.on_input(now=10.0)
        assert len(released) == 1
        assert released[0].emit_ts == 10.0

    def test_empty_batches_release_nothing(self):
        strategy = BatchedOutput(batch_size=1)
        assert strategy.on_input(now=0.0) == []

    def test_flush(self):
        items = make_tuples([1.0])
        strategy = BatchedOutput(batch_size=100)
        strategy.on_decisions([_decision("A", items)], now=0.0)
        assert len(strategy.flush(now=5.0)) == 1

    def test_batch_size_validated(self):
        with pytest.raises(ValueError):
            BatchedOutput(0)


class TestStrategiesEndToEnd:
    """Figure 4.13's ordering: Pcs <= region-gated <= batched latency."""

    def _mean_delay(self, strategy, paper_trace):
        result = GroupAwareEngine(
            paper_group(),
            algorithm="per_candidate_set",
            output_strategy=strategy,
        ).run(paper_trace)
        delays = [e.delay_ms for e in result.emissions]
        return sum(delays) / len(delays)

    def test_latency_ordering(self, paper_trace):
        pcs = self._mean_delay(PerCandidateSetOutput(), paper_trace)
        region = self._mean_delay(RegionOutput(), paper_trace)
        batched = self._mean_delay(BatchedOutput(len(paper_trace)), paper_trace)
        assert pcs <= region <= batched

    def test_same_tuples_delivered_regardless_of_strategy(self, paper_trace):
        outputs = set()
        for strategy in (RegionOutput(), PerCandidateSetOutput(), BatchedOutput(4)):
            result = GroupAwareEngine(
                paper_group(),
                algorithm="per_candidate_set",
                output_strategy=strategy,
            ).run(paper_trace)
            outputs.add(frozenset(result.distinct_output_seqs))
        assert len(outputs) == 1
