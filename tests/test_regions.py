"""Unit tests for region-based segmentation (section 2.3.2)."""

import pytest

from repro.core.candidates import CandidateSet
from repro.core.regions import Region, RegionTracker
from tests.conftest import make_tuples


def _set(filter_name, items, closed=True):
    cs = CandidateSet(filter_name)
    for item in items:
        cs.add(item)
    if closed:
        cs.close()
    return cs


class TestRegion:
    def test_time_cover_union(self):
        items = make_tuples([1.0, 2.0, 3.0, 4.0], interval_ms=10)
        region = Region(sets=[_set("a", items[:2]), _set("b", items[2:])])
        assert region.time_cover.min_ts == 0.0
        assert region.time_cover.max_ts == 30.0

    def test_tuple_seqs_deduplicated(self):
        items = make_tuples([1.0, 2.0, 3.0])
        region = Region(sets=[_set("a", items[:2]), _set("b", items[1:])])
        assert region.tuple_seqs == {0, 1, 2}
        assert region.size == 3
        assert len(region) == 2

    def test_empty_region_cover_raises(self):
        with pytest.raises(ValueError, match="no tuples"):
            Region(sets=[]).time_cover


class TestOfflinePartition:
    def test_paper_example_two_regions(self):
        """Figure 2.5: three DC filters produce exactly two regions."""
        items = make_tuples([0, 35, 29, 45, 50, 59, 80, 97, 100, 112], interval_ms=10)
        by_value = {int(t.value("value")): t for t in items}
        sets = [
            _set("A", [by_value[0]]),
            _set("A", [by_value[45], by_value[50], by_value[59]]),
            _set("A", [by_value[97], by_value[100]]),
            _set("B", [by_value[0]]),
            _set("B", [by_value[45], by_value[50]]),
            _set("B", [by_value[97], by_value[100]]),
            _set("C", [by_value[0]]),
            _set("C", [by_value[59], by_value[80], by_value[97], by_value[100]]),
        ]
        regions = RegionTracker.partition(sets)
        assert len(regions) == 2
        assert len(regions[0]) == 3  # the three singleton {0} sets
        assert len(regions[1]) == 5

    def test_transitive_connectivity(self):
        """Definition 3: A-B connected and B-C connected puts A and C in
        one region even if A and C do not intersect."""
        items = make_tuples([1.0] * 5, interval_ms=10)
        a = _set("a", items[0:2])  # covers [0, 10]
        b = _set("b", items[1:4])  # covers [10, 30]
        c = _set("c", items[3:5])  # covers [30, 40]
        regions = RegionTracker.partition([a, c, b])
        assert len(regions) == 1

    def test_empty_sets_ignored(self):
        items = make_tuples([1.0])
        assert len(RegionTracker.partition([_set("a", items), CandidateSet("b")])) == 1

    def test_no_sets(self):
        assert RegionTracker.partition([]) == []


class TestRegionTracker:
    def test_region_not_closed_while_sets_open(self):
        items = make_tuples([1.0, 2.0], interval_ms=10)
        tracker = RegionTracker()
        open_set = _set("a", items, closed=False)
        tracker.watch(open_set)
        assert tracker.poll(now=100.0) == []

    def test_region_closes_after_all_sets_closed(self):
        items = make_tuples([1.0, 2.0], interval_ms=10)
        tracker = RegionTracker()
        cs = _set("a", items)
        tracker.watch(cs)
        regions = tracker.poll(now=20.0)
        assert len(regions) == 1
        assert regions[0].sets == [cs]
        assert tracker.regions_emitted == 1

    def test_closed_component_waits_for_now_to_pass(self):
        """A component whose cover reaches 'now' could still be joined."""
        items = make_tuples([1.0, 2.0], interval_ms=10)
        tracker = RegionTracker()
        tracker.watch(_set("a", items))
        assert tracker.poll(now=10.0) == []  # cover max == now
        assert len(tracker.poll(now=10.1)) == 1

    def test_final_flush_ignores_now(self):
        items = make_tuples([1.0, 2.0], interval_ms=10)
        tracker = RegionTracker()
        tracker.watch(_set("a", items))
        assert len(tracker.poll(now=10.0, final=True)) == 1

    def test_open_set_blocks_connected_component_only(self):
        items = make_tuples([1.0] * 6, interval_ms=10)
        tracker = RegionTracker()
        early = _set("a", items[0:2])  # [0, 10] closed
        blocker = _set("b", items[1:3], closed=False)  # [10, 20] open
        tracker.watch(early)
        tracker.watch(blocker)
        assert tracker.poll(now=100.0) == []
        blocker.close()
        assert len(tracker.poll(now=100.0)) == 1

    def test_disjoint_components_close_independently(self):
        items = make_tuples([1.0] * 8, interval_ms=10)
        tracker = RegionTracker()
        done = _set("a", items[0:2])  # [0, 10]
        pending = _set("b", items[5:7], closed=False)  # [50, 60] open
        tracker.watch(done)
        tracker.watch(pending)
        regions = tracker.poll(now=60.0)
        assert len(regions) == 1
        assert regions[0].sets == [done]

    def test_cut_marking(self):
        items = make_tuples([1.0, 2.0], interval_ms=10)
        tracker = RegionTracker()
        cs = _set("a", items, closed=False)
        cs.close(cut=True)
        tracker.watch(cs)
        regions = tracker.poll(now=20.0)
        assert regions[0].cut
        assert tracker.regions_cut == 1

    def test_active_span(self):
        items = make_tuples([1.0, 2.0], interval_ms=10)
        tracker = RegionTracker()
        tracker.watch(_set("a", items, closed=False))
        assert tracker.active_span(now=35.0) == 35.0

    def test_active_span_empty(self):
        assert RegionTracker().active_span(now=10.0) == 0.0

    def test_active_tuple_count_dedups(self):
        items = make_tuples([1.0, 2.0, 3.0], interval_ms=10)
        tracker = RegionTracker()
        tracker.watch(_set("a", items[:2], closed=False))
        tracker.watch(_set("b", items[1:], closed=False))
        assert tracker.active_tuple_count() == 3

    def test_has_open_sets(self):
        items = make_tuples([1.0])
        tracker = RegionTracker()
        assert not tracker.has_open_sets()
        cs = _set("a", items, closed=False)
        tracker.watch(cs)
        assert tracker.has_open_sets()
        cs.close()
        assert not tracker.has_open_sets()

    def test_empty_closed_sets_are_discarded(self):
        tracker = RegionTracker()
        cs = CandidateSet("a")
        tracker.watch(cs)
        cs.close()
        tracker.poll(now=10.0)
        assert tracker.active_sets() == []

    def test_empty_closed_sets_purged_even_without_closable_regions(self):
        # Regression: the poll fast path (no populated set closed) must
        # still purge fully-dismissed closed sets, or they accumulate in
        # the per-arrival scans on a live stream.
        items = make_tuples([1.0, 2.0], interval_ms=10)
        tracker = RegionTracker()
        emptied = CandidateSet("a")
        emptied.add(items[0])
        tracker.watch(emptied)
        emptied.remove(items[0])  # all tuples dismissed
        emptied.close()
        still_open = CandidateSet("b")
        still_open.add(items[1])
        tracker.watch(still_open)
        assert tracker.poll(now=100.0) == []  # open set: nothing closes
        assert emptied.set_id not in tracker._active
        assert still_open.set_id in tracker._active
