"""Property tests for subscription churn on the live broker.

The contract under test: however a subscription set was arrived at —
any interleaving of subscribe / unsubscribe / re-filter events — the
service's decided outputs over a subsequently fed trace equal those of
a fresh batch engine built directly from the final subscription set.
"""

from __future__ import annotations

import asyncio

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.engine import GroupAwareEngine
from repro.filters.spec import parse_filter
from repro.runtime.tasks import EngineConfig
from repro.service import DisseminationService, ServiceConfig, decided_map
from repro.sources import random_walk_trace

APPS = ("a", "b", "c", "d")
SPEC_CHOICES = (
    "DC1(temp, 1.5, 0.75)",
    "DC1(temp, 2.5, 1.25)",
    "DC1(temp, 4.0, 2.0)",
    "DC2(temp, 0.8, 0.4)",
)

#: One churn event: (app index, spec index or None for unsubscribe).
events = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=len(APPS) - 1),
        st.one_of(
            st.none(), st.integers(min_value=0, max_value=len(SPEC_CHOICES) - 1)
        ),
    ),
    min_size=1,
    max_size=12,
)


async def _apply_churn(service, ops) -> dict[str, str]:
    """Drive subscribe/re-filter/unsubscribe from the raw event list."""
    live: dict[str, str] = {}
    for app_index, spec_index in ops:
        app = APPS[app_index]
        if spec_index is None:
            if app in live:
                await service.unsubscribe(app)
                del live[app]
        else:
            spec = SPEC_CHOICES[spec_index]
            if app in live:
                await service.re_filter(app, spec)
            else:
                await service.subscribe(app, "src", spec, queue_capacity=10_000)
            live[app] = spec
    return live


@settings(max_examples=25, deadline=None)
@given(ops=events, algorithm=st.sampled_from(["region", "per_candidate_set"]))
def test_churn_interleaving_equals_fresh_engine(ops, algorithm):
    trace = random_walk_trace(n=120, seed=42, attribute="temp")

    async def run():
        service = DisseminationService(
            ServiceConfig(
                engine=EngineConfig(algorithm=algorithm), batch_max_items=1
            )
        )
        service.add_source("src")
        final = await _apply_churn(service, ops)
        await service.feed("src", trace)
        epochs = (await service.close())["src"]
        return service.subscriptions("src"), final, epochs

    subscriptions, final, epochs = asyncio.run(run())
    assert dict(subscriptions) == final

    if not final:
        assert epochs == []
        return
    assert len(epochs) == 1  # churn before the feed → one engine epoch
    filters = [parse_filter(spec, name=app) for app, spec in subscriptions]
    reference = GroupAwareEngine(filters, algorithm=algorithm).run(trace)
    assert decided_map(epochs[0]) == decided_map(reference)


@settings(max_examples=10, deadline=None)
@given(
    ops=events,
    cut_at=st.integers(min_value=1, max_value=99),
)
def test_churn_mid_stream_keeps_serving(ops, cut_at):
    """Churn between tuples never wedges the broker or loses sessions."""
    trace = random_walk_trace(n=100, seed=7, attribute="temp")

    async def run():
        service = DisseminationService(
            ServiceConfig(engine=EngineConfig(algorithm="region"), batch_max_items=1)
        )
        service.add_source("src")
        await service.subscribe(
            "seed-app", "src", "DC1(temp, 2.0, 1.0)", queue_capacity=10_000
        )
        for item in trace[:cut_at]:
            await service.offer("src", item)
        final = await _apply_churn(service, ops)
        for item in trace[cut_at:]:
            await service.offer("src", item)
        snapshot = service.snapshot()
        await service.close()
        return final, snapshot

    final, snapshot = asyncio.run(run())
    expected_apps = set(final) | {"seed-app"}
    assert {s.app_name for s in snapshot.sessions} == expected_apps
    assert snapshot.offered == 100
