"""Declarative rules file loading, merging and validation."""

import json

import pytest

from repro.obs.rulesfile import RulesFileError, load_rules_file
from repro.obs.slo import default_rules, default_slos

try:
    import tomllib
except ModuleNotFoundError:  # pragma: no cover - Python 3.10
    tomllib = None


def _write(tmp_path, name, payload):
    path = tmp_path / name
    if isinstance(payload, str):
        path.write_text(payload, encoding="utf-8")
    else:
        path.write_text(json.dumps(payload), encoding="utf-8")
    return path


def test_empty_file_yields_the_defaults(tmp_path):
    config = load_rules_file(_write(tmp_path, "rules.json", {}))
    assert {r.name for r in config.rules} == {r.name for r in default_rules()}
    assert {s.name for s in config.slos} == {s.name for s in default_slos()}
    assert config.remediation is None


def test_rules_merge_by_name_over_defaults(tmp_path):
    path = _write(
        tmp_path,
        "rules.json",
        {
            "rule": [
                # Override a stock rule's thresholds...
                {
                    "name": "overflow_drops",
                    "signal": "overflow_drop_ratio",
                    "warn": 0.5,
                    "critical": 0.9,
                },
                # ...and add a brand-new one.
                {"name": "custom_lag", "signal": "lag_ms", "warn": 100},
            ]
        },
    )
    config = load_rules_file(path)
    by_name = {r.name: r for r in config.rules}
    assert by_name["overflow_drops"].warn == 0.5
    assert "custom_lag" in by_name
    # Untouched defaults survive the merge.
    assert "worker_dead" in by_name


def test_disable_drops_a_stock_rule_and_replace_defaults_starts_empty(tmp_path):
    disabled = load_rules_file(
        _write(
            tmp_path,
            "a.json",
            {"rule": [{"name": "worker_flapping", "disable": True}]},
        )
    )
    assert "worker_flapping" not in {r.name for r in disabled.rules}

    replaced = load_rules_file(
        _write(
            tmp_path,
            "b.json",
            {
                "replace_defaults": True,
                "rule": [{"name": "only_one", "signal": "x", "warn": 1}],
                "slo": [],
            },
        )
    )
    assert [r.name for r in replaced.rules] == ["only_one"]
    assert replaced.slos == []


def test_watch_table_feeds_slo_defaults(tmp_path):
    config = load_rules_file(
        _write(
            tmp_path,
            "rules.json",
            {"watch": {"interval_s": 0.25, "decide_p99_target_ms": 123.0}},
        )
    )
    assert config.watch["interval_s"] == 0.25
    assert config.watch["decide_p99_target_ms"] == 123.0
    # The target threads into the stock decide-latency SLO.
    assert any(s.name == "slo_decide_p99" for s in config.slos)


def test_remediation_table_round_trips_into_policy(tmp_path):
    from repro.service.remediate import RemediationPolicy

    config = load_rules_file(
        _write(
            tmp_path,
            "rules.json",
            {
                "remediation": {
                    "max_risk": 0.7,
                    "cooldown_s": 3.0,
                    "allow_scale": True,
                    "max_workers": 5,
                }
            },
        )
    )
    policy = RemediationPolicy(**config.remediation)
    assert policy.max_risk == 0.7
    assert policy.allow_scale is True
    assert policy.max_workers == 5


@pytest.mark.parametrize(
    "payload,needle",
    [
        ({"rule": [{"signal": "x"}]}, "name"),
        ({"rule": [{"name": "r"}]}, "signal"),
        ({"rule": {"name": "r"}}, "array"),
        ({"watch": {"intervall_s": 1}}, "unknown key"),
        ({"remediation": {"max_risks": 1}}, "unknown key"),
        ({"watch": {"interval_s": -1}}, "positive"),
        ({"bogus_top": 1}, "unknown key"),
    ],
)
def test_malformed_files_fail_loudly(tmp_path, payload, needle):
    with pytest.raises(RulesFileError) as err:
        load_rules_file(_write(tmp_path, "bad.json", payload))
    assert needle in str(err.value)


def test_unreadable_and_unparseable_files(tmp_path):
    with pytest.raises(RulesFileError, match="cannot read"):
        load_rules_file(tmp_path / "missing.json")
    with pytest.raises(RulesFileError, match="not valid"):
        load_rules_file(_write(tmp_path, "bad.json", "{ not json ["))


@pytest.mark.skipif(tomllib is None, reason="tomllib needs Python 3.11+")
def test_toml_and_json_describe_the_same_config(tmp_path):
    toml_text = """
        [watch]
        interval_s = 0.5

        [[rule]]
        name = "overflow_drops"
        signal = "overflow_drop_ratio"
        warn = 0.1
        critical = 0.4

        [remediation]
        max_risk = 0.25
    """
    json_payload = {
        "watch": {"interval_s": 0.5},
        "rule": [
            {
                "name": "overflow_drops",
                "signal": "overflow_drop_ratio",
                "warn": 0.1,
                "critical": 0.4,
            }
        ],
        "remediation": {"max_risk": 0.25},
    }
    from_toml = load_rules_file(_write(tmp_path, "rules.toml", toml_text))
    from_json = load_rules_file(_write(tmp_path, "rules.json", json_payload))
    assert from_toml.watch == from_json.watch
    assert from_toml.remediation == from_json.remediation
    t = next(r for r in from_toml.rules if r.name == "overflow_drops")
    j = next(r for r in from_json.rules if r.name == "overflow_drops")
    assert (t.warn, t.critical) == (j.warn, j.critical)
    # An unsuffixed file containing TOML is sniffed correctly too.
    sniffed = load_rules_file(_write(tmp_path, "rules", toml_text))
    assert sniffed.watch == from_toml.watch
