"""Unit tests for the group-aware and self-interested engines."""

import pytest

from repro.core.engine import GroupAwareEngine, SelfInterestedEngine
from repro.core.tuples import Trace
from repro.filters.delta import DeltaCompressionFilter
from tests.conftest import paper_group, random_walk_values


class TestEngineConstruction:
    def test_requires_filters(self):
        with pytest.raises(ValueError, match="at least one"):
            GroupAwareEngine([])
        with pytest.raises(ValueError, match="at least one"):
            SelfInterestedEngine([])

    def test_unique_names_required(self):
        filters = [
            DeltaCompressionFilter("same", "temp", 10, 1),
            DeltaCompressionFilter("same", "temp", 20, 2),
        ]
        with pytest.raises(ValueError, match="unique"):
            GroupAwareEngine(filters)

    def test_unknown_algorithm(self):
        with pytest.raises(ValueError, match="unknown algorithm"):
            GroupAwareEngine(paper_group(), algorithm="magic")

    def test_filters_property(self):
        group = paper_group()
        engine = GroupAwareEngine(group)
        assert engine.filters == group


class TestEngineLifecycle:
    def test_process_after_finish_raises(self, paper_trace):
        engine = GroupAwareEngine(paper_group())
        engine.run(paper_trace)
        with pytest.raises(RuntimeError, match="finished"):
            engine.process(paper_trace[0])

    def test_finish_is_idempotent(self, paper_trace):
        engine = GroupAwareEngine(paper_group())
        result = engine.run(paper_trace)
        assert engine.finish() is result

    def test_incremental_processing_matches_run(self, paper_trace):
        batch_engine = GroupAwareEngine(paper_group())
        batch = batch_engine.run(paper_trace)
        incremental_engine = GroupAwareEngine(paper_group())
        for item in paper_trace:
            incremental_engine.process(item)
        incremental = incremental_engine.finish()
        assert incremental.distinct_output_seqs == batch.distinct_output_seqs

    def test_input_count(self, paper_trace):
        result = GroupAwareEngine(paper_group()).run(paper_trace)
        assert result.input_count == len(paper_trace)

    def test_cpu_samples_per_tuple(self, paper_trace):
        result = GroupAwareEngine(paper_group()).run(paper_trace)
        assert len(result.cpu_ns_per_tuple) == len(paper_trace)
        assert all(ns >= 0 for ns in result.cpu_ns_per_tuple)


class TestEngineResult:
    def test_oi_ratio(self, paper_trace):
        result = GroupAwareEngine(paper_group()).run(paper_trace)
        assert result.oi_ratio == pytest.approx(3 / 10)

    def test_oi_ratio_empty(self):
        from repro.core.engine import EngineResult

        assert EngineResult().oi_ratio == 0.0

    def test_outputs_for_sorted_and_unique(self, paper_trace):
        result = GroupAwareEngine(paper_group()).run(paper_trace)
        outputs = result.outputs_for("A")
        timestamps = [t.timestamp for t in outputs]
        assert timestamps == sorted(timestamps)
        assert len({t.seq for t in outputs}) == len(outputs)

    def test_outputs_for_unknown_filter(self, paper_trace):
        result = GroupAwareEngine(paper_group()).run(paper_trace)
        assert result.outputs_for("nope") == []

    def test_transmissions_at_least_distinct(self, paper_trace):
        result = GroupAwareEngine(
            paper_group(), algorithm="per_candidate_set"
        ).run(paper_trace)
        assert result.transmissions >= result.output_count

    def test_latencies_match_emissions(self, paper_trace):
        result = GroupAwareEngine(paper_group()).run(paper_trace)
        assert len(result.latencies_ms) == len(result.emissions)
        assert all(delay >= 0 for delay in result.latencies_ms)

    def test_mean_latency_empty(self):
        from repro.core.engine import EngineResult

        assert EngineResult().mean_latency_ms == 0.0

    def test_percent_regions_cut_no_regions(self):
        from repro.core.engine import EngineResult

        assert EngineResult().percent_regions_cut == 0.0


class TestGroupAwareInvariants:
    def test_every_emission_recipient_is_a_filter(self, paper_trace):
        result = GroupAwareEngine(paper_group()).run(paper_trace)
        names = {"A", "B", "C"}
        for emission in result.emissions:
            assert emission.recipients <= names
            assert emission.recipients

    def test_decisions_reference_set_members(self, paper_trace):
        result = GroupAwareEngine(paper_group()).run(paper_trace)
        for decisions in result.decisions.values():
            for decision in decisions:
                assert decision.tuples

    def test_emissions_never_duplicate_tuple_to_same_recipient(self, paper_trace):
        result = GroupAwareEngine(
            paper_group(), algorithm="per_candidate_set"
        ).run(paper_trace)
        seen: set[tuple[int, str]] = set()
        for emission in result.emissions:
            for recipient in emission.recipients:
                key = (emission.item.seq, recipient)
                assert key not in seen
                seen.add(key)

    @pytest.mark.parametrize("algorithm", ["region", "per_candidate_set"])
    def test_group_aware_never_worse_than_si_on_walks(self, algorithm):
        for seed in range(5):
            values = random_walk_values(400, seed=seed, scale=1.0)
            trace = Trace.from_values(values, attribute="temp", interval_ms=10)
            group = [
                DeltaCompressionFilter("A", "temp", 2.0, 1.0),
                DeltaCompressionFilter("B", "temp", 3.0, 1.5),
                DeltaCompressionFilter("C", "temp", 5.0, 2.5),
            ]
            ga = GroupAwareEngine(
                [DeltaCompressionFilter(f.name, "temp", f.delta, f.slack) for f in group],
                algorithm=algorithm,
            ).run(trace)
            si = SelfInterestedEngine(group).run(trace)
            assert ga.output_count <= si.output_count

    def test_single_filter_matches_si(self):
        """With one filter there is no group to share with: the chosen
        output count equals the reference count."""
        values = random_walk_values(300, seed=3)
        trace = Trace.from_values(values, attribute="temp", interval_ms=10)
        ga = GroupAwareEngine(
            [DeltaCompressionFilter("A", "temp", 2.0, 1.0)]
        ).run(trace)
        si = SelfInterestedEngine(
            [DeltaCompressionFilter("A", "temp", 2.0, 1.0)]
        ).run(trace)
        assert ga.output_count == si.output_count


class TestSelfInterestedEngine:
    def test_emissions_at_arrival_time(self, paper_trace):
        result = SelfInterestedEngine(paper_group()).run(paper_trace)
        for emission in result.emissions:
            assert emission.emit_ts == emission.item.timestamp

    def test_same_tuple_merged_across_filters(self, paper_trace):
        result = SelfInterestedEngine(paper_group()).run(paper_trace)
        first = result.emissions[0]
        assert first.item.value("temp") == 0
        assert first.recipients == frozenset({"A", "B", "C"})

    def test_process_after_finish_raises(self, paper_trace):
        engine = SelfInterestedEngine(paper_group())
        engine.run(paper_trace)
        with pytest.raises(RuntimeError, match="finished"):
            engine.process(paper_trace[0])
