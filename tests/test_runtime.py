"""Tests for the sharded parallel runtime (repro.runtime)."""

from __future__ import annotations

import pytest

from repro.core.tuples import StreamTuple, Trace
from repro.experiments.configs import TABLE_4_1_GROUPS
from repro.experiments.harness import (
    get_parallelism,
    run_group,
    set_parallelism,
    variant_from_name,
)
from repro.runtime import (
    EngineConfig,
    GroupTask,
    HashRing,
    ShardedRuntime,
    canonical_result,
    combine,
    partition_keyed_stream,
    partition_tasks,
    run_sequential,
    run_task,
    run_tasks,
    shard_for_key,
)
from repro.sources.namos import namos_trace
from tests.conftest import make_tuples


def _chapter4_tasks(n_tuples: int = 300, algorithms=("region", "per_candidate_set")):
    trace = namos_trace(n=n_tuples, seed=7)
    return [
        GroupTask.build(
            key=f"{group_name}/{algorithm}",
            specs=specs,
            stream=trace,
            config=EngineConfig(algorithm=algorithm),
        )
        for group_name, specs in TABLE_4_1_GROUPS.items()
        for algorithm in algorithms
    ]


# ---------------------------------------------------------------------------
# Partitioning
# ---------------------------------------------------------------------------
class TestPartition:
    def test_shard_for_key_is_stable_and_bounded(self):
        for key in ("DC_Fluoro", "DC_Hybrid", "group/42", ""):
            for shards in (1, 2, 4, 8):
                index = shard_for_key(key, shards)
                assert 0 <= index < shards
                assert index == shard_for_key(key, shards)

    def test_single_shard_takes_everything(self):
        tasks = _chapter4_tasks(n_tuples=50)
        buckets = partition_tasks(tasks, 1)
        assert len(buckets) == 1 and len(buckets[0]) == len(tasks)

    @pytest.mark.parametrize("placement", ["balanced", "hashed"])
    def test_every_task_lands_on_exactly_one_shard(self, placement):
        tasks = _chapter4_tasks(n_tuples=50)
        buckets = partition_tasks(tasks, 4, placement=placement)
        keys = [task.key for bucket in buckets for task in bucket]
        assert sorted(keys) == sorted(task.key for task in tasks)

    def test_balanced_placement_spreads_load_evenly(self):
        tasks = _chapter4_tasks(n_tuples=50)  # 6 tasks
        buckets = partition_tasks(tasks, 4)
        sizes = sorted(len(bucket) for bucket in buckets)
        assert sizes == [1, 1, 2, 2]

    def test_invalid_shard_count(self):
        with pytest.raises(ValueError, match="at least 1"):
            shard_for_key("k", 0)
        with pytest.raises(ValueError, match="at least 1"):
            partition_tasks([], 0)

    def test_invalid_placement(self):
        with pytest.raises(ValueError, match="unknown placement"):
            partition_tasks([], 2, placement="gravitational")

    def test_keyed_stream_demux_preserves_order(self):
        items = make_tuples([1.0, 2.0, 3.0, 4.0])
        keyed = [("a", items[0]), ("b", items[1]), ("a", items[2]), ("b", items[3])]
        streams = partition_keyed_stream(keyed)
        assert [t.seq for t in streams["a"]] == [0, 2]
        assert [t.seq for t in streams["b"]] == [1, 3]


# ---------------------------------------------------------------------------
# Consistent-hash ring
# ---------------------------------------------------------------------------
class TestHashRing:
    KEYS = [f"source-{i}" for i in range(400)]

    def test_placement_is_deterministic_and_bounded(self):
        a = HashRing(range(5))
        b = HashRing(range(5))
        owners = a.assignment(self.KEYS)
        assert owners == b.assignment(self.KEYS)
        assert set(owners.values()) <= set(range(5))

    def test_incremental_build_equals_fresh_build(self):
        fresh = HashRing(range(6))
        grown = HashRing()
        for member in range(6):
            grown.add(member)
        assert fresh.assignment(self.KEYS) == grown.assignment(self.KEYS)
        # add() is idempotent.
        grown.add(3)
        assert fresh.assignment(self.KEYS) == grown.assignment(self.KEYS)

    def test_adding_a_member_moves_few_keys_and_only_to_it(self):
        ring = HashRing(range(5))
        before = ring.assignment(self.KEYS)
        ring.add(5)
        after = ring.assignment(self.KEYS)
        moved = [k for k in self.KEYS if before[k] != after[k]]
        # Everything that moved went to the newcomer, nothing shuffled
        # between survivors...
        assert all(after[k] == 5 for k in moved)
        # ...and the volume is ~1/N of the keys (generous 3x slack for
        # virtual-replica variance).
        assert len(moved) <= 3 * len(self.KEYS) / 6

    def test_removing_a_member_moves_only_its_keys(self):
        ring = HashRing(range(6))
        before = ring.assignment(self.KEYS)
        ring.remove(2)
        after = ring.assignment(self.KEYS)
        for key in self.KEYS:
            if before[key] == 2:
                assert after[key] != 2
            else:
                assert after[key] == before[key]

    def test_leave_and_rejoin_restores_the_original_placement(self):
        ring = HashRing(range(4))
        before = ring.assignment(self.KEYS)
        ring.remove(1)
        ring.add(1)
        assert ring.assignment(self.KEYS) == before

    def test_empty_ring_owns_nothing(self):
        ring = HashRing()
        assert ring.owner("anything") is None
        assert len(ring) == 0
        ring.remove("ghost")  # no-op, no error

    def test_replicas_spread_load(self):
        ring = HashRing(range(4), replicas=64)
        counts = {m: 0 for m in range(4)}
        for key, owner in ring.assignment(self.KEYS).items():
            counts[owner] += 1
        # No member starves or hogs: within 4x of even share.
        share = len(self.KEYS) / 4
        assert all(share / 4 <= c <= 4 * share for c in counts.values())

    def test_invalid_replicas(self):
        with pytest.raises(ValueError):
            HashRing(replicas=0)


# ---------------------------------------------------------------------------
# Task model
# ---------------------------------------------------------------------------
class TestGroupTask:
    def test_payload_round_trip(self):
        task = _chapter4_tasks(n_tuples=20)[0]
        rebuilt = GroupTask.from_payload(task.to_payload())
        assert rebuilt.key == task.key
        assert rebuilt.specs == task.specs
        assert rebuilt.config == task.config
        assert [t.seq for t in rebuilt.tuples] == [t.seq for t in task.tuples]
        assert rebuilt.tuples[3].values == task.tuples[3].values

    def test_engine_config_validation(self):
        with pytest.raises(ValueError, match="unknown algorithm"):
            EngineConfig(algorithm="magic")
        with pytest.raises(ValueError, match="unknown output"):
            EngineConfig(output="holographic")
        with pytest.raises(ValueError, match="batch_size"):
            EngineConfig(batch_size=0)

    def test_run_task_matches_direct_engine(self):
        task = _chapter4_tasks(n_tuples=200)[0]
        direct = run_task(task)
        again = run_task(task)
        assert canonical_result(direct) == canonical_result(again)


# ---------------------------------------------------------------------------
# Sharded execution and merge
# ---------------------------------------------------------------------------
class TestShardedRuntime:
    def test_rejects_duplicate_keys(self):
        task = _chapter4_tasks(n_tuples=20)[0]
        with pytest.raises(ValueError, match="unique"):
            run_sequential([task, task])

    def test_rejects_unknown_executor(self):
        with pytest.raises(ValueError, match="unknown executor"):
            ShardedRuntime(executor="quantum")

    @pytest.mark.parametrize("executor", ["serial", "thread", "process"])
    @pytest.mark.parametrize("shards", [2, 4])
    def test_sharded_equals_sequential_chapter4(self, executor, shards):
        """The acceptance property: shard-merge output == sequential output."""
        tasks = _chapter4_tasks(n_tuples=250)
        reference = run_sequential(tasks).canonical()
        run = run_tasks(tasks, shards=shards, executor=executor)
        assert run.canonical() == reference

    def test_results_preserve_workload_order(self):
        tasks = _chapter4_tasks(n_tuples=60)
        run = run_tasks(tasks, shards=3, executor="serial")
        assert list(run.results) == [task.key for task in tasks]

    def test_hashed_placement_matches_shard_for_key(self):
        tasks = _chapter4_tasks(n_tuples=60)
        run = ShardedRuntime(shards=3, executor="serial", placement="hashed").run(tasks)
        for task in tasks:
            assert run.assignment[task.key] == shard_for_key(task.key, 3)

    def test_hashed_placement_output_equals_sequential(self):
        tasks = _chapter4_tasks(n_tuples=100)
        reference = run_sequential(tasks).canonical()
        run = ShardedRuntime(shards=3, executor="serial", placement="hashed").run(tasks)
        assert run.canonical() == reference

    def test_cuts_and_output_strategies_survive_sharding(self):
        trace = namos_trace(n=250, seed=11)
        tasks = [
            GroupTask.build(
                key=name,
                specs=TABLE_4_1_GROUPS["DC_Tmpr"],
                stream=trace,
                config=config,
            )
            for name, config in (
                ("rg+c", EngineConfig(algorithm="region", constraint_ms=120.0)),
                ("ps-batched", EngineConfig(algorithm="per_candidate_set", output="batched", batch_size=50)),
                ("si", EngineConfig(algorithm="self_interested")),
            )
        ]
        reference = run_sequential(tasks).canonical()
        run = run_tasks(tasks, shards=2, executor="process")
        assert run.canonical() == reference
        assert run.results["rg+c"].cuts_triggered >= 0

    def test_combined_metrics_sum_over_groups(self):
        tasks = _chapter4_tasks(n_tuples=150)
        run = run_sequential(tasks)
        combined = run.combined
        assert combined.input_count == sum(r.input_count for r in run.results.values())
        assert combined.output_count == sum(r.output_count for r in run.results.values())
        assert combined.transmissions == len(combined.emissions)
        assert 0.0 < combined.oi_ratio <= 1.0

    def test_combined_emissions_are_time_ordered(self):
        tasks = _chapter4_tasks(n_tuples=150)
        combined = run_sequential(tasks).combined
        stamps = [emission.emit_ts for _, emission in combined.emissions]
        assert stamps == sorted(stamps)

    def test_combine_empty(self):
        combined = combine({})
        assert combined.input_count == 0
        assert combined.oi_ratio == 0.0
        assert combined.mean_latency_ms == 0.0


# ---------------------------------------------------------------------------
# Harness and CLI wiring
# ---------------------------------------------------------------------------
class TestHarnessWiring:
    def test_variant_to_engine_config(self):
        config = variant_from_name("RG+C").to_engine_config(constraint_ms=42.0)
        assert config.algorithm == "region"
        assert config.constraint_ms == 42.0
        config = variant_from_name("PS(B)-200").to_engine_config()
        assert config.output == "batched" and config.batch_size == 200
        assert config.constraint_ms is None

    def test_run_group_sharded_equals_sequential(self):
        trace = namos_trace(n=250, seed=7)
        specs = TABLE_4_1_GROUPS["DC_Hybrid"]
        sequential = run_group("g", specs, trace)
        sharded = run_group("g", specs, trace, shards=4, executor="thread")
        assert set(sequential.results) == set(sharded.results)
        for variant in sequential.results:
            assert canonical_result(sequential.results[variant]) == canonical_result(
                sharded.results[variant]
            ), variant

    def test_set_parallelism_default_applies(self):
        try:
            set_parallelism(2, "serial")
            assert get_parallelism() == (2, "serial")
            trace = namos_trace(n=120, seed=7)
            run = run_group("g", TABLE_4_1_GROUPS["DC_Tmpr"], trace)
            assert set(run.results) == {"RG", "RG+C", "PS", "PS+C", "SI"}
        finally:
            set_parallelism(1, "process")

    def test_set_parallelism_rejects_bad_values(self):
        with pytest.raises(ValueError, match="at least 1"):
            set_parallelism(0)
        with pytest.raises(ValueError, match="unknown executor"):
            set_parallelism(2, "processes")
        assert get_parallelism() == (1, "process")

    def test_cli_shards_flag(self, capsys):
        from repro.experiments.cli import main

        try:
            assert main(["run", "table_4_2", "--shards", "2", "--executor", "serial"]) == 0
        finally:
            set_parallelism(1, "process")
        assert "Filter type notations" in capsys.readouterr().out


# ---------------------------------------------------------------------------
# Keyed-stream end to end
# ---------------------------------------------------------------------------
def test_keyed_stream_to_sharded_run():
    """Demultiplex one interleaved keyed stream, then shard by group key."""
    base = namos_trace(n=200, seed=3)
    keyed = []
    for item in base:
        keyed.append(("even" if item.seq % 2 == 0 else "odd", item))
    streams = partition_keyed_stream(keyed)
    # Rebuild per-group time-ordered traces (Trace validates ordering).
    tasks = [
        GroupTask.build(
            key=key,
            specs=["DC1(tmpr4, 0.0620, 0.0310)", "DC1(tmpr4, 0.0310, 0.0155)"],
            stream=Trace(
                StreamTuple(seq=i, timestamp=t.timestamp, values=t.values)
                for i, t in enumerate(items)
            ),
        )
        for key, items in streams.items()
    ]
    reference = run_sequential(tasks).canonical()
    run = run_tasks(tasks, shards=2, executor="process")
    assert run.canonical() == reference
    assert set(run.results) == {"even", "odd"}
