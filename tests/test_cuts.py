"""Unit tests for timely cuts and the run-time predictor (Chapter 3)."""

import pytest

from repro.core.cuts import RuntimePredictor, TimeConstraint
from repro.core.engine import GroupAwareEngine, SelfInterestedEngine
from repro.core.tuples import Trace
from repro.filters.delta import DeltaCompressionFilter
from tests.conftest import paper_group, random_walk_values


class TestTimeConstraint:
    def test_positive_delay_required(self):
        with pytest.raises(ValueError):
            TimeConstraint(0)
        with pytest.raises(ValueError):
            TimeConstraint(-5)

    def test_negative_overestimate_rejected(self):
        with pytest.raises(ValueError):
            TimeConstraint(10, overestimate_ms=-1)

    def test_valid(self):
        constraint = TimeConstraint(125.0, overestimate_ms=2.0)
        assert constraint.max_delay_ms == 125.0


class TestRuntimePredictor:
    def test_no_observations_predicts_zero(self):
        assert RuntimePredictor().predict(100) == 0.0

    def test_single_observation_is_constant(self):
        predictor = RuntimePredictor()
        predictor.observe(10, 5.0)
        assert predictor.predict(10) == 5.0
        assert predictor.predict(100) == 5.0

    def test_fits_linear_data_exactly(self):
        predictor = RuntimePredictor()
        for size in (2, 4, 6, 8):
            predictor.observe(size, 3.0 * size + 1.0)
        slope, intercept = predictor.coefficients()
        assert slope == pytest.approx(3.0)
        assert intercept == pytest.approx(1.0)
        assert predictor.predict(10) == pytest.approx(31.0)

    def test_same_size_observations_use_mean(self):
        predictor = RuntimePredictor()
        predictor.observe(5, 2.0)
        predictor.observe(5, 4.0)
        assert predictor.predict(5) == pytest.approx(3.0)
        assert predictor.predict(50) == pytest.approx(3.0)

    def test_window_drops_old_observations(self):
        predictor = RuntimePredictor(window=2)
        predictor.observe(1, 100.0)
        predictor.observe(2, 2.0)
        predictor.observe(3, 3.0)  # evicts the 100.0 outlier
        slope, intercept = predictor.coefficients()
        assert slope == pytest.approx(1.0)
        assert intercept == pytest.approx(0.0, abs=1e-9)

    def test_prediction_never_negative(self):
        predictor = RuntimePredictor()
        predictor.observe(10, 1.0)
        predictor.observe(20, 0.1)
        assert predictor.predict(1000) >= 0.0

    def test_negative_runtime_clamped(self):
        predictor = RuntimePredictor()
        predictor.observe(10, -5.0)
        assert predictor.predict(10) == 0.0

    def test_window_minimum(self):
        with pytest.raises(ValueError):
            RuntimePredictor(window=1)

    def test_observation_count(self):
        predictor = RuntimePredictor(window=3)
        for i in range(5):
            predictor.observe(i + 1, float(i))
        assert predictor.observation_count == 3


class TestRegionCuts:
    def _run(self, constraint_ms, trace):
        return GroupAwareEngine(
            paper_group(),
            algorithm="region",
            time_constraint=TimeConstraint(constraint_ms),
        ).run(trace)

    def test_cuts_bound_emission_delay(self):
        values = random_walk_values(600, seed=1, scale=0.4)
        trace = Trace.from_values(values, attribute="temp", interval_ms=10)

        def run(constraint_ms):
            group = [
                DeltaCompressionFilter("A", "temp", 2.0, 1.0),
                DeltaCompressionFilter("B", "temp", 3.0, 1.5),
            ]
            engine = GroupAwareEngine(
                group,
                algorithm="region",
                time_constraint=TimeConstraint(constraint_ms),
            )
            return engine.run(trace)

        tight = run(50)
        loose = run(5000)
        tight_delays = [e.delay_ms for e in tight.emissions]
        loose_delays = [e.delay_ms for e in loose.emissions]
        assert max(tight_delays) <= max(loose_delays)
        assert sum(tight_delays) / len(tight_delays) <= sum(loose_delays) / len(
            loose_delays
        )

    def test_tighter_cuts_cut_more_regions(self):
        values = random_walk_values(600, seed=2, scale=0.4)
        trace = Trace.from_values(values, attribute="temp", interval_ms=10)
        percents = []
        for constraint_ms in (40, 120, 5000):
            result = GroupAwareEngine(
                [
                    DeltaCompressionFilter("A", "temp", 2.0, 1.0),
                    DeltaCompressionFilter("B", "temp", 3.0, 1.5),
                ],
                algorithm="region",
                time_constraint=TimeConstraint(constraint_ms),
            ).run(trace)
            percents.append(result.percent_regions_cut)
        assert percents[0] >= percents[1] >= percents[2]

    def test_cuts_never_worse_than_si(self):
        for seed in range(4):
            values = random_walk_values(400, seed=seed, scale=0.5)
            trace = Trace.from_values(values, attribute="temp", interval_ms=10)

            def group():
                return [
                    DeltaCompressionFilter("A", "temp", 2.0, 1.0),
                    DeltaCompressionFilter("B", "temp", 3.0, 1.5),
                    DeltaCompressionFilter("C", "temp", 4.5, 2.0),
                ]

            si = SelfInterestedEngine(group()).run(trace)
            for constraint_ms in (30, 80, 200):
                cut = GroupAwareEngine(
                    group(),
                    algorithm="region",
                    time_constraint=TimeConstraint(constraint_ms),
                ).run(trace)
                assert cut.output_count <= si.output_count

    def test_quality_preserved_under_cuts(self, paper_trace):
        """Every filter still receives one output per reference step."""
        result = GroupAwareEngine(
            paper_group(),
            algorithm="region",
            time_constraint=TimeConstraint(40),
        ).run(paper_trace)
        # A's references are 0, 50, 100; even cut, A gets 3 updates (or
        # fewer only if a reference step was consumed by a cut set).
        assert 2 <= len(result.outputs_for("A")) <= 3
        assert len(result.outputs_for("B")) >= 2


class TestPerCandidateSetCuts:
    def test_set_span_bounded(self):
        values = random_walk_values(500, seed=5, scale=0.3)
        trace = Trace.from_values(values, attribute="temp", interval_ms=10)
        constraint_ms = 60.0
        result = GroupAwareEngine(
            [
                DeltaCompressionFilter("A", "temp", 2.0, 1.0),
                DeltaCompressionFilter("B", "temp", 3.5, 1.7),
            ],
            algorithm="per_candidate_set",
            time_constraint=TimeConstraint(constraint_ms),
        ).run(trace)
        assert result.cuts_triggered > 0
        # Decisions happen within one arrival of the constraint.
        for decisions in result.decisions.values():
            for decision in decisions:
                for item in decision.tuples:
                    assert decision.decide_ts - item.timestamp <= constraint_ms + 10.0
