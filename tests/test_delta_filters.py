"""Unit tests for delta-compression filters (DC1/DC2/DC3, stateful)."""

import pytest

from repro.core.tuples import Trace
from repro.filters.delta import DeltaCompressionFilter, StatefulDeltaCompressionFilter
from repro.filters.multiattr import AveragedDeltaFilter
from repro.filters.trend import TrendDeltaFilter
from repro.filters.validate import replay_candidate_sets


def _sets_as_values(sets, attribute="temp"):
    return [[t.value(attribute) for t in cs.tuples] for cs in sets]


def _replay(filter_factory, values, attribute="temp"):
    trace = Trace.from_values(values, attribute=attribute, interval_ms=10)
    return replay_candidate_sets(filter_factory, trace)


class TestConstruction:
    def test_axiom_1_enforced(self):
        with pytest.raises(ValueError, match="Axiom 1"):
            DeltaCompressionFilter("f", "temp", delta=10, slack=6)

    def test_boundary_slack_allowed(self):
        DeltaCompressionFilter("f", "temp", delta=10, slack=5)

    def test_negative_delta_rejected(self):
        with pytest.raises(ValueError, match="delta"):
            DeltaCompressionFilter("f", "temp", delta=-1, slack=0)

    def test_negative_slack_rejected(self):
        with pytest.raises(ValueError, match="slack"):
            DeltaCompressionFilter("f", "temp", delta=10, slack=-1)

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError, match="name"):
            DeltaCompressionFilter("", "temp", delta=10, slack=1)

    def test_taxonomy(self):
        flt = DeltaCompressionFilter("f", "temp", delta=10, slack=1)
        taxonomy = flt.taxonomy
        assert taxonomy.candidate_computation.attributes == ("temp",)
        assert not taxonomy.dependency.stateful
        assert not flt.stateful

    def test_stateful_taxonomy(self):
        flt = StatefulDeltaCompressionFilter("f", "temp", delta=10, slack=1)
        assert flt.stateful
        assert flt.taxonomy.dependency.dependent_state == "previous-chosen-tuples"


class TestCandidateSets:
    """Candidate sets of the Figure 2.5 worked example, per filter."""

    def test_filter_a(self):
        sets = _replay(
            lambda: DeltaCompressionFilter("A", "temp", 50, 10),
            [0, 35, 29, 45, 50, 59, 80, 97, 100, 112],
        )
        assert _sets_as_values(sets) == [[0], [45, 50, 59], [97, 100]]

    def test_filter_b(self):
        sets = _replay(
            lambda: DeltaCompressionFilter("B", "temp", 40, 5),
            [0, 35, 29, 45, 50, 59, 80, 97, 100, 112],
        )
        assert _sets_as_values(sets) == [[0], [45, 50], [97, 100]]

    def test_filter_c(self):
        sets = _replay(
            lambda: DeltaCompressionFilter("C", "temp", 80, 25),
            [0, 35, 29, 45, 50, 59, 80, 97, 100, 112],
        )
        assert _sets_as_values(sets) == [[0], [59, 80, 97, 100]]

    def test_references_marked(self):
        sets = _replay(
            lambda: DeltaCompressionFilter("A", "temp", 50, 10),
            [0, 35, 29, 45, 50, 59, 80, 97, 100, 112],
        )
        assert [cs.reference.value("temp") for cs in sets] == [0, 50, 100]

    def test_first_tuple_is_seed_reference(self):
        sets = _replay(lambda: DeltaCompressionFilter("f", "temp", 10, 2), [5.0])
        # Flush discards nothing: the seed set must be emitted.
        assert _sets_as_values(sets) == [[5.0]]

    def test_decreasing_values(self):
        sets = _replay(
            lambda: DeltaCompressionFilter("f", "temp", 10, 3),
            [100, 95, 91, 89, 80, 70],
        )
        # refs at 100, 89 (|89-100|=11>=10), 70 (|70-89|=19)
        values = _sets_as_values(sets)
        assert values[0] == [100]
        assert 89 in values[1]
        assert 70 in values[2]

    def test_tentative_dismissed_on_contiguity_break(self):
        """A tuple in the pre-reference zone is dismissed if the series
        leaves the zone before the reference materializes."""
        sets = _replay(
            lambda: DeltaCompressionFilter("f", "temp", 50, 10),
            [0, 45, 20, 50, 80],
        )
        # 45 enters the zone [40, 60] but 20 breaks contiguity; the
        # reference 50 then starts a fresh vicinity.
        assert _sets_as_values(sets) == [[0], [50]]

    def test_tentative_kept_when_contiguous(self):
        sets = _replay(
            lambda: DeltaCompressionFilter("f", "temp", 50, 10),
            [0, 45, 50, 80],
        )
        assert _sets_as_values(sets) == [[0], [45, 50]]

    def test_tentative_outside_slack_of_reference_dismissed(self):
        """Zone members farther than slack from the realized reference
        are dismissed when the reference is found."""
        sets = _replay(
            lambda: DeltaCompressionFilter("f", "temp", 50, 10),
            [0, 41, 52, 80],
        )
        # 41 is in the zone [40, 60] but |41-52| = 11 > 10.
        assert _sets_as_values(sets) == [[0], [52]]

    def test_overshoot_reference(self):
        """A big jump lands the reference beyond delta in one step."""
        sets = _replay(
            lambda: DeltaCompressionFilter("f", "temp", 50, 10), [0, 120, 240]
        )
        assert _sets_as_values(sets) == [[0], [120], [240]]

    def test_pre_reference_tail_discarded_at_flush(self):
        """Zone members with no realized reference are owed to nobody."""
        sets = _replay(
            lambda: DeltaCompressionFilter("f", "temp", 50, 10), [0, 45]
        )
        assert _sets_as_values(sets) == [[0]]

    def test_axiom_1_time_covers_disjoint(self):
        values = [0, 35, 29, 45, 50, 59, 80, 97, 100, 112]
        sets = _replay(lambda: DeltaCompressionFilter("A", "temp", 50, 10), values)
        for first, second in zip(sets, sets[1:]):
            assert not first.time_cover.intersects(second.time_cover)


class TestSelfInterested:
    def test_reference_outputs(self):
        flt = DeltaCompressionFilter("A", "temp", 50, 10).make_self_interested()
        trace = Trace.from_values(
            [0, 35, 29, 45, 50, 59, 80, 97, 100], attribute="temp"
        )
        outputs = []
        for item in trace:
            outputs.extend(flt.process(item))
        outputs.extend(flt.flush())
        assert [t.value("temp") for t in outputs] == [0, 50, 100]

    def test_fresh_instance_each_time(self):
        flt = DeltaCompressionFilter("A", "temp", 50, 10)
        first = flt.make_self_interested()
        second = flt.make_self_interested()
        item = Trace.from_values([5.0], attribute="temp")[0]
        assert first.process(item) == [item]
        assert second.process(item) == [item]


class TestTrendFilter:
    def test_trend_references(self):
        # Values move at +1/tuple (trend 100/s at 10 ms spacing), then
        # accelerate to +3/tuple (300/s): the trend change triggers a ref.
        values = [0, 1, 2, 3, 6, 9, 12]
        sets = _replay(lambda: TrendDeltaFilter("f", "temp", 150, 50), values)
        # Seed set (trend 0), then a set triggered by the 100/s step is
        # not reached (|100-0| < 150); the 300/s step is (|300-0| >= 150
        # relative to base 0? base advances to 100 after first close).
        assert len(sets) >= 2

    def test_trend_first_tuple_zero(self):
        sets = _replay(lambda: TrendDeltaFilter("f", "temp", 10, 1), [5.0, 5.0])
        assert len(sets) == 1  # constant series: only the seed reference

    def test_self_interested_matches_group_count(self):
        values = [0, 1, 2, 3, 6, 9, 12, 13, 14]
        trace = Trace.from_values(values, attribute="temp", interval_ms=10)
        sets = replay_candidate_sets(
            lambda: TrendDeltaFilter("f", "temp", 150, 50), trace
        )
        si = TrendDeltaFilter("f", "temp", 150, 50).make_self_interested()
        outputs = []
        for item in trace:
            outputs.extend(si.process(item))
        assert len(sets) == len(outputs)


class TestAveragedFilter:
    def test_requires_two_attributes(self):
        with pytest.raises(ValueError, match="at least two"):
            AveragedDeltaFilter("f", ["a"], 10, 1)

    def test_average_drives_references(self):
        trace = Trace.from_columns(
            {"a": [0.0, 10.0, 20.0], "b": [0.0, 10.0, 20.0]}, interval_ms=10
        )
        sets = replay_candidate_sets(
            lambda: AveragedDeltaFilter("f", ["a", "b"], 10, 2), trace
        )
        assert len(sets) == 3  # averages 0, 10, 20 all reference

    def test_mixed_channels_cancel(self):
        trace = Trace.from_columns(
            {"a": [0.0, 10.0, 20.0], "b": [0.0, -10.0, -20.0]}, interval_ms=10
        )
        sets = replay_candidate_sets(
            lambda: AveragedDeltaFilter("f", ["a", "b"], 10, 2), trace
        )
        assert len(sets) == 1  # average stays 0


class TestStatefulFilter:
    def test_base_follows_chosen_output(self):
        """Figure 2.9: the next candidate set is computed from the chosen
        tuple, not the reference."""
        from repro.core.engine import GroupAwareEngine

        values = [0, 48, 52, 100, 148]
        trace = Trace.from_values(values, attribute="temp", interval_ms=10)
        flt = StatefulDeltaCompressionFilter("S", "temp", 50, 10)
        result = GroupAwareEngine([flt], algorithm="per_candidate_set").run(trace)
        delivered = [t.value("temp") for t in result.outputs_for("S")]
        assert delivered[0] == 0
        # The second set is {48, 52}; whichever is chosen becomes the base
        # for the third reference.
        assert delivered[1] in (48, 52)
