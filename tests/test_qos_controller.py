"""Unit tests for the server-side degradation controller (AIMD loop).

The controller is pure synchronous bookkeeping over an injected clock,
so every edge here — exact threshold boundaries, cooldown, probe
backoff, profile round-trips — is deterministic.
"""

from __future__ import annotations

import pytest

from repro.qos import DegradationPolicy, QualitySpec
from repro.qos.controller import (
    DegradationConfig,
    DegradationController,
    DegradationDecision,
    policy_from_profile,
    policy_to_profile,
)


def _spec(delta: float) -> QualitySpec:
    return QualitySpec(
        app_name="app", filter_spec=f"DC1(temp, {delta}, {delta / 2})"
    )


def _policy(levels=3, floors=None) -> DegradationPolicy:
    return DegradationPolicy(
        app_name="app",
        levels=tuple(_spec(float(2 ** i)) for i in range(levels)),
        bandwidth_floors_kbps=floors or (),
    )


def _config(**overrides) -> DegradationConfig:
    base = dict(
        queue_high_ratio=0.5,
        drop_rate_per_s=10.0,
        flush_wait_ms=100.0,
        interval_s=1.0,
        cooldown_s=2.0,
        healthy_window_s=4.0,
        probe_backoff=2.0,
        max_probe_wait_s=32.0,
    )
    base.update(overrides)
    return DegradationConfig(**base)


def _calm(controller, now, *, depth=0, dropped=0, egress=10 ** 9):
    """One healthy observation (queue empty, generous egress)."""
    return controller.observe(
        now,
        queue_depth=depth,
        queue_capacity=10,
        dropped_tuples=dropped,
        egress_bytes=egress,
    )


def _stressed(controller, now):
    """One observation with the queue past the high-water ratio."""
    return controller.observe(
        now,
        queue_depth=10,
        queue_capacity=10,
        dropped_tuples=0,
        egress_bytes=0,
    )


class TestObserveBasics:
    def test_first_observation_only_baselines(self):
        controller = DegradationController(_policy(), _config())
        assert _stressed(controller, 0.0) is None
        assert controller.level == 0

    def test_calls_within_interval_absorbed(self):
        controller = DegradationController(_policy(), _config(interval_s=1.0))
        _stressed(controller, 0.0)
        assert _stressed(controller, 0.5) is None
        decision = _stressed(controller, 1.0)
        assert decision is not None and decision.action == "degrade"

    def test_exact_queue_ratio_boundary_trips(self):
        """ratio == queue_high_ratio is stressed (>=, not >)."""
        controller = DegradationController(
            _policy(), _config(queue_high_ratio=0.5)
        )
        _calm(controller, 0.0)
        decision = controller.observe(
            1.0,
            queue_depth=5,
            queue_capacity=10,
            dropped_tuples=0,
            egress_bytes=10 ** 9,
        )
        assert decision is not None
        assert decision.signal == "queue_depth"
        assert decision.value == pytest.approx(0.5)

    def test_just_below_queue_ratio_is_healthy(self):
        controller = DegradationController(
            _policy(), _config(queue_high_ratio=0.5)
        )
        _calm(controller, 0.0)
        assert (
            controller.observe(
                1.0,
                queue_depth=4,
                queue_capacity=10,
                dropped_tuples=0,
                egress_bytes=10 ** 9,
            )
            is None
        )

    def test_drop_rate_is_differentiated_against_last_eval(self):
        controller = DegradationController(
            _policy(), _config(drop_rate_per_s=10.0)
        )
        _calm(controller, 0.0, dropped=100)  # baseline, not a rate
        # 100 -> 105 over 1s = 5/s: below threshold.
        assert _calm(controller, 1.0, dropped=105) is None
        # 105 -> 115 over 1s = 10/s: exactly at threshold, trips.
        decision = _calm(controller, 2.0, dropped=115)
        assert decision is not None and decision.signal == "drop_rate"
        assert decision.value == pytest.approx(10.0)

    def test_flush_wait_signal_and_reset(self):
        controller = DegradationController(
            _policy(), _config(flush_wait_ms=100.0, cooldown_s=0.0)
        )
        _calm(controller, 0.0)
        controller.note_flush_wait(40.0)
        controller.note_flush_wait(150.0)  # worst-of wins
        controller.note_flush_wait(60.0)
        decision = _calm(controller, 1.0)
        assert decision is not None and decision.signal == "flush_wait"
        assert decision.value == pytest.approx(150.0)
        # The recorded wait is consumed by the evaluation.
        assert _calm(controller, 2.0) is None

    def test_flush_wait_none_disables_signal(self):
        controller = DegradationController(
            _policy(), _config(flush_wait_ms=None)
        )
        _calm(controller, 0.0)
        controller.note_flush_wait(10_000.0)
        assert _calm(controller, 1.0) is None

    def test_bandwidth_floor_requires_backlog(self):
        """Low egress with an empty queue is a quiet stream, not stress."""
        floors = (500.0, 200.0, 0.0)
        controller = DegradationController(
            _policy(floors=floors), _config()
        )
        _calm(controller, 0.0, egress=0)
        # Empty queue: egress 0 kbps yet no verdict.
        assert _calm(controller, 1.0, egress=0) is None
        # One waiting tuple flips the meaning of the same egress number.
        decision = controller.observe(
            2.0,
            queue_depth=1,
            queue_capacity=10,
            dropped_tuples=0,
            egress_bytes=0,
        )
        assert decision is not None and decision.signal == "bandwidth"
        assert decision.threshold == pytest.approx(500.0)


class TestDegradeRecover:
    def test_degrades_one_level_at_a_time(self):
        controller = DegradationController(_policy(3), _config(cooldown_s=0.0))
        _stressed(controller, 0.0)
        first = _stressed(controller, 1.0)
        assert (first.from_level, first.to_level) == (0, 1)
        assert first.spec == controller.policy.levels[1].filter_spec
        second = _stressed(controller, 2.0)
        assert (second.from_level, second.to_level) == (1, 2)
        assert controller.level == 2

    def test_cooldown_spaces_degrade_steps(self):
        controller = DegradationController(_policy(3), _config(cooldown_s=2.0))
        _stressed(controller, 0.0)
        assert _stressed(controller, 1.0) is not None
        # 1s after the step: inside the 2s cooldown.
        assert _stressed(controller, 2.0) is None
        assert _stressed(controller, 3.0) is not None

    def test_at_max_level_stress_yields_no_decision(self):
        controller = DegradationController(
            _policy(2), _config(cooldown_s=0.0), level=1
        )
        _stressed(controller, 0.0)
        assert _stressed(controller, 1.0) is None
        assert controller.level == 1

    def test_single_level_policy_never_steps(self):
        controller = DegradationController(_policy(1), _config(cooldown_s=0.0))
        _stressed(controller, 0.0)
        for t in range(1, 6):
            assert _stressed(controller, float(t)) is None
        assert controller.trajectory == [("start", 0)]

    def test_recovers_after_healthy_window(self):
        controller = DegradationController(
            _policy(3), _config(healthy_window_s=4.0), level=2
        )
        _calm(controller, 0.0)
        assert _calm(controller, 1.0) is None  # calm 0s -> window starts
        assert _calm(controller, 4.0) is None  # calm 3s < 4s
        decision = _calm(controller, 5.0)  # calm 4s: probe up
        assert decision is not None
        assert decision.action == "recover"
        assert (decision.from_level, decision.to_level) == (2, 1)
        assert decision.signal == "healthy"

    def test_probe_retrip_backs_off_multiplicatively(self):
        """A probe that re-trips doubles the wait before the next probe;
        a probe that survives keeps the current wait."""
        controller = DegradationController(
            _policy(3),
            _config(healthy_window_s=4.0, probe_backoff=2.0, cooldown_s=0.0),
            level=2,
        )
        _calm(controller, 0.0)
        _calm(controller, 1.0)  # healthy-since = 1.0
        assert _calm(controller, 5.0).action == "recover"  # probe to 1
        # The probe re-trips immediately: back down *and* double the wait.
        retrip = _stressed(controller, 6.0)
        assert retrip.action == "degrade" and retrip.to_level == 2
        # Next recovery now needs 8s of calm, not 4.
        _calm(controller, 7.0)  # healthy-since = 7.0
        assert _calm(controller, 12.0) is None  # 5s < 8s
        decision = _calm(controller, 15.0)  # 8s of calm
        assert decision is not None and decision.action == "recover"
        assert decision.threshold == pytest.approx(8.0)

    def test_probe_wait_capped(self):
        controller = DegradationController(
            _policy(2),
            _config(
                healthy_window_s=4.0,
                probe_backoff=10.0,
                max_probe_wait_s=16.0,
                cooldown_s=0.0,
            ),
            level=1,
        )
        now = 0.0
        _calm(controller, now)
        for _ in range(3):  # three failed probes would want 4000s
            now += 1.0
            _calm(controller, now)
            now += controller._probe_wait_s
            assert _calm(controller, now).action == "recover"
            now += 1.0
            assert _stressed(controller, now).action == "degrade"
        assert controller._probe_wait_s == pytest.approx(16.0)

    def test_probe_wait_resets_at_level_zero(self):
        controller = DegradationController(
            _policy(2),
            _config(healthy_window_s=4.0, probe_backoff=2.0, cooldown_s=0.0),
            level=1,
        )
        _calm(controller, 0.0)
        _calm(controller, 1.0)
        assert _calm(controller, 5.0).action == "recover"  # at level 0
        assert _stressed(controller, 6.0).action == "degrade"  # wait -> 8s
        _calm(controller, 7.0)
        assert _calm(controller, 15.0).action == "recover"  # back at 0
        # A full healthy window at level 0 resets the probe cadence.
        _calm(controller, 19.5)
        assert controller._probe_wait_s == pytest.approx(4.0)

    def test_trajectory_records_transitions(self):
        controller = DegradationController(_policy(3), _config(cooldown_s=0.0))
        _stressed(controller, 0.0)
        _stressed(controller, 1.0)
        _stressed(controller, 2.0)
        _calm(controller, 3.0)
        _calm(controller, 8.0)
        assert controller.trajectory == [
            ("start", 0),
            ("degrade", 1),
            ("degrade", 2),
            ("recover", 1),
        ]


class TestValidation:
    def test_config_rejects_bad_values(self):
        with pytest.raises(ValueError):
            DegradationConfig(queue_high_ratio=1.5)
        with pytest.raises(ValueError):
            DegradationConfig(drop_rate_per_s=-1.0)
        with pytest.raises(ValueError):
            DegradationConfig(flush_wait_ms=0.0)
        with pytest.raises(ValueError):
            DegradationConfig(interval_s=0.0)
        with pytest.raises(ValueError):
            DegradationConfig(probe_backoff=0.5)
        with pytest.raises(ValueError):
            DegradationConfig(healthy_window_s=10.0, max_probe_wait_s=5.0)

    def test_controller_rejects_out_of_range_level(self):
        with pytest.raises(ValueError, match="outside"):
            DegradationController(_policy(2), level=2)
        with pytest.raises(ValueError, match="outside"):
            DegradationController(_policy(2), level=-1)


class TestProfileRoundTrip:
    def test_policy_round_trips_with_level_and_config(self):
        policy = DegradationPolicy(
            app_name="app",
            levels=(
                QualitySpec(
                    "app",
                    "DC1(temp, 1.0, 0.5)",
                    latency_tolerance_ms=80.0,
                    priority=2,
                ),
                _spec(4.0),
            ),
            bandwidth_floors_kbps=(300.0, 0.0),
        )
        config = _config(flush_wait_ms=50.0)
        profile = policy_to_profile(policy, level=1, config=config)
        back, level, back_cfg = policy_from_profile(profile, "app")
        assert back == policy
        assert level == 1
        assert back_cfg == config

    def test_flush_wait_none_survives_round_trip(self):
        profile = policy_to_profile(
            _policy(2), config=_config(flush_wait_ms=None)
        )
        assert profile["config"]["flush_wait_ms"] is None
        _, _, config = policy_from_profile(profile, "app")
        assert config.flush_wait_ms is None

    def test_bare_spec_strings_accepted(self):
        policy, level, config = policy_from_profile(
            {"levels": ["DC1(temp, 1.0, 0.5)", "DC1(temp, 4.0, 2.0)"]}, "app"
        )
        assert [s.filter_spec for s in policy.levels] == [
            "DC1(temp, 1.0, 0.5)",
            "DC1(temp, 4.0, 2.0)",
        ]
        assert level == 0 and config is None

    def test_malformed_profiles_rejected(self):
        with pytest.raises(ValueError, match="non-empty 'levels'"):
            policy_from_profile({"levels": []}, "app")
        with pytest.raises(ValueError, match="'spec' key"):
            policy_from_profile({"levels": [{"latency_tolerance_ms": 5}]}, "app")
        with pytest.raises(ValueError, match="outside the policy"):
            policy_from_profile(
                {"levels": ["DC1(temp, 1.0, 0.5)"], "level": 1}, "app"
            )
        with pytest.raises(ValueError, match="unknown degradation config"):
            policy_from_profile(
                {
                    "levels": ["DC1(temp, 1.0, 0.5)"],
                    "config": {"nope": 1},
                },
                "app",
            )
        with pytest.raises(ValueError, match="must be a mapping"):
            policy_from_profile(
                {"levels": ["DC1(temp, 1.0, 0.5)"], "config": 7}, "app"
            )

    def test_decision_is_frozen_evidence(self):
        decision = DegradationDecision(
            action="degrade",
            from_level=0,
            to_level=1,
            spec="DC1(temp, 2.0, 1.0)",
            signal="queue_depth",
            value=0.9,
            threshold=0.85,
        )
        with pytest.raises(Exception):
            decision.action = "recover"
