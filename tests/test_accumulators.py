"""Tests for the bounded CPU-sample accumulator (infinite-stream safety)."""

from __future__ import annotations

import pickle

import pytest

from repro.core.accumulators import BoundedSamples
from repro.core.engine import GroupAwareEngine
from repro.filters.delta import DeltaCompressionFilter
from repro.metrics.cpu import cpu_ms_per_batch
from repro.sources import random_walk_trace


class TestBoundedSamples:
    def test_exact_while_under_capacity(self):
        acc = BoundedSamples(capacity=10)
        for value in (3.0, 1.0, 2.0):
            acc.append(value)
        assert len(acc) == 3
        assert acc.total == 6.0
        assert acc.mean == 2.0
        assert list(acc) == [3.0, 1.0, 2.0]
        assert acc.samples == [3.0, 1.0, 2.0]
        assert acc == [3.0, 1.0, 2.0]

    def test_bounded_beyond_capacity(self):
        acc = BoundedSamples(capacity=64)
        n = 10_000
        for value in range(n):
            acc.append(float(value))
        assert len(acc) == n  # exact count
        assert acc.total == float(n * (n - 1) // 2)  # exact sum
        assert len(acc.samples) == 64  # bounded retention
        assert acc.mean == pytest.approx((n - 1) / 2)

    def test_reservoir_is_representative(self):
        acc = BoundedSamples(capacity=512)
        for value in range(100_000):
            acc.append(float(value))
        # A uniform reservoir over 0..99999 has a median near 50k.
        assert 30_000 < acc.percentile(50) < 70_000

    def test_percentiles_exact_under_capacity(self):
        acc = BoundedSamples([1.0, 2.0, 3.0, 4.0, 5.0], capacity=100)
        assert acc.percentile(0) == 1.0
        assert acc.percentile(50) == 3.0
        assert acc.percentile(100) == 5.0
        with pytest.raises(ValueError):
            acc.percentile(101)

    def test_deterministic_across_instances(self):
        a = BoundedSamples(capacity=16)
        b = BoundedSamples(capacity=16)
        for value in range(1000):
            a.append(float(value))
            b.append(float(value))
        assert a == b

    def test_picklable(self):
        # The sharded runtime ships EngineResults across processes.
        acc = BoundedSamples(capacity=8)
        for value in range(100):
            acc.append(float(value))
        clone = pickle.loads(pickle.dumps(acc))
        assert clone == acc
        clone.append(1.0)  # the RNG state survived too
        assert len(clone) == 101

    def test_empty(self):
        acc = BoundedSamples()
        assert not acc
        assert len(acc) == 0
        assert acc.mean == 0.0
        assert acc.percentile(99) == 0.0


class TestEngineResultUsesAccumulator:
    def test_engine_cpu_log_is_bounded_but_exact_means(self):
        trace = random_walk_trace(n=300, seed=1, attribute="temp")
        engine = GroupAwareEngine(
            [DeltaCompressionFilter("f", attribute="temp", delta=2.0, slack=0.9)]
        )
        result = engine.run(trace)
        samples = result.cpu_ns_per_tuple
        assert isinstance(samples, BoundedSamples)
        assert len(samples) == len(trace)
        assert all(ns >= 0 for ns in samples)
        assert result.total_cpu_ms == pytest.approx(samples.total / 1e6)
        batches = cpu_ms_per_batch(result, batch_size=100)
        assert sum(batches) == pytest.approx(result.total_cpu_ms)
