"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.core.tuples import StreamTuple, Trace
from repro.filters.delta import DeltaCompressionFilter

#: The nine-tuple sequence of section 2.1.1 plus the closing 112 used by
#: the worked examples of Figures 2.5/2.8/2.11/3.4/3.5.
PAPER_VALUES = [0, 35, 29, 45, 50, 59, 80, 97, 100, 112]


@pytest.fixture
def paper_trace() -> Trace:
    return Trace.from_values(PAPER_VALUES, attribute="temp", interval_ms=10)


def paper_group() -> list[DeltaCompressionFilter]:
    """The three DC filters of the worked examples: A=(10,50), B=(5,40),
    C=(25,80) in the paper's (slack, delta) notation."""
    return [
        DeltaCompressionFilter("A", "temp", delta=50, slack=10),
        DeltaCompressionFilter("B", "temp", delta=40, slack=5),
        DeltaCompressionFilter("C", "temp", delta=80, slack=25),
    ]


def make_tuples(values, interval_ms: float = 10.0) -> list[StreamTuple]:
    return [
        StreamTuple(seq=i, timestamp=i * interval_ms, values={"value": v})
        for i, v in enumerate(values)
    ]


def random_walk_values(n: int, seed: int, scale: float = 1.0) -> list[float]:
    rng = random.Random(seed)
    values = [0.0]
    for _ in range(n - 1):
        values.append(values[-1] + rng.gauss(0.0, scale))
    return values


def temps(result, name: str) -> list[float]:
    """Per-filter delivered temperature values, in order."""
    return [t.value("temp") for t in result.outputs_for(name)]
