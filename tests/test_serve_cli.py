"""Subprocess test: ``repro serve`` lifecycle and graceful shutdown."""

from __future__ import annotations

import asyncio
import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

from repro.core.tuples import StreamTuple
from repro.transport import GatewayClient

_SRC = str(Path(__file__).resolve().parent.parent / "src")


def _env() -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (_SRC, env.get("PYTHONPATH")) if p
    )
    return env


def _start_serve(*extra_args: str) -> tuple[subprocess.Popen, int, int | None]:
    proc = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.experiments",
            "serve",
            "--port",
            "0",
            *extra_args,
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=_env(),
    )
    deadline = time.monotonic() + 30
    line = ""
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if "listening on" in line:
            break
        if proc.poll() is not None:
            raise AssertionError(f"serve exited early: {line}")
    assert "listening on" in line, f"no ready line: {line!r}"
    # "gateway listening on HOST:PORT[, http on HOST:PORT]"
    parts = line.strip().split(", http on ")
    port = int(parts[0].rsplit(":", 1)[1])
    http_port = int(parts[1].rsplit(":", 1)[1]) if len(parts) > 1 else None
    return proc, port, http_port


def test_sigterm_flushes_and_emits_terminal_snapshot():
    """SIGTERM final-flushes staged batches to live subscribers and
    prints a terminal snapshot before exit."""
    proc, port, _ = _start_serve()
    try:

        async def drive() -> list[int]:
            client = await GatewayClient.connect("127.0.0.1", port)
            await client.ensure_source("src")
            # Huge batch bound: everything this test offers stays staged
            # in the session batcher until the shutdown's final flush.
            sub = await client.subscribe(
                "app0",
                "src",
                "DC1(value, 0.0001, 0.00005)",
                batch_max_items=10_000,
                batch_max_delay_ms=1e9,
            )
            for i in range(10):
                await client.ingest(
                    "src",
                    StreamTuple(
                        seq=i, timestamp=float(i) * 10.0, values={"value": float(i)}
                    ),
                )
            proc.send_signal(signal.SIGTERM)
            received: list[int] = []
            async for batch in sub.batches():
                received.extend(item.seq for item in batch.items)
            await client.close(send_bye=False)
            return received

        received = asyncio.run(asyncio.wait_for(drive(), timeout=30))
        out, _ = proc.communicate(timeout=30)
        assert proc.returncode == 0, out
        terminal = json.loads(out.strip().splitlines()[-1])
        assert terminal["offered"] == 10
        # The chatty filter decided (nearly) every tuple; none may be
        # stranded in a batcher at exit.
        assert received, "final flush delivered nothing"
        # Graceful shutdown never detaches sessions, it flushes them in
        # place: all staged tuples must have reached the consumer.
        staged = sum(
            s["staged_tuples"]
            for s in terminal["sessions"] + terminal["retired"]
        )
        assert staged == len(received)
        assert terminal["delivered_tuples"] == len(received)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.communicate(timeout=10)


def test_sigint_terminal_snapshot_without_clients():
    # The duplicated source name must be deduplicated, not crash startup.
    proc, port, http_port = _start_serve(
        "--http-port", "0", "--sources", "a,b,a"
    )
    try:
        assert http_port is not None
        proc.send_signal(signal.SIGINT)
        out, _ = proc.communicate(timeout=30)
        assert proc.returncode == 0, out
        terminal = json.loads(out.strip().splitlines()[-1])
        assert sorted(terminal["sources"]) == ["a", "b"]
        assert terminal["offered"] == 0
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.communicate(timeout=10)
