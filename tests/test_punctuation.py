"""Unit tests for stream punctuations and downstream reordering."""

from repro.core.engine import GroupAwareEngine
from repro.core.output import Emission, PerCandidateSetOutput
from repro.core.punctuation import (
    OrderingBuffer,
    PunctuatedStream,
    Punctuation,
    measure_disorder,
)
from tests.conftest import make_tuples, paper_group


def _emission(item, ts):
    return Emission(item, frozenset({"A"}), emit_ts=ts, decide_ts=ts)


class TestPunctuatedStream:
    def test_interleaving(self):
        items = make_tuples([1.0, 2.0])
        stream = PunctuatedStream()
        stream.emit(_emission(items[0], 10.0))
        stream.punctuate(low_watermark=10.0, now=12.0)
        stream.emit(_emission(items[1], 20.0))
        elements = stream.elements
        assert isinstance(elements[1], Punctuation)
        assert elements[1].low_watermark == 10.0


class TestOrderingBuffer:
    def test_releases_in_order_at_watermark(self):
        items = make_tuples([1.0, 2.0, 3.0], interval_ms=10)
        buffer = OrderingBuffer()
        # Arrive out of order: seq 1 (ts 10) before seq 0 (ts 0).
        assert buffer.offer(_emission(items[1], 30.0)) == []
        assert buffer.offer(_emission(items[0], 31.0)) == []
        released = buffer.offer(Punctuation(low_watermark=10.0, emit_ts=32.0))
        assert [e.item.seq for e in released] == [0, 1]
        buffer.assert_ordered()

    def test_holds_beyond_watermark(self):
        items = make_tuples([1.0, 2.0], interval_ms=10)
        buffer = OrderingBuffer()
        buffer.offer(_emission(items[1], 30.0))  # ts 10
        released = buffer.offer(Punctuation(low_watermark=5.0, emit_ts=31.0))
        assert released == []
        assert len(buffer.flush()) == 1

    def test_flush_sorts(self):
        items = make_tuples([1.0, 2.0, 3.0], interval_ms=10)
        buffer = OrderingBuffer()
        buffer.offer(_emission(items[2], 50.0))
        buffer.offer(_emission(items[0], 51.0))
        flushed = buffer.flush()
        assert [e.item.seq for e in flushed] == [0, 2]
        buffer.assert_ordered()


class TestMeasureDisorder:
    def test_ordered_stream(self):
        items = make_tuples([1.0, 2.0, 3.0], interval_ms=10)
        emissions = [_emission(item, 100.0) for item in items]
        assert measure_disorder(emissions) == 0

    def test_counts_inversions(self):
        items = make_tuples([1.0, 2.0, 3.0], interval_ms=10)
        emissions = [
            _emission(items[2], 100.0),
            _emission(items[0], 101.0),
            _emission(items[1], 102.0),
        ]
        assert measure_disorder(emissions) == 2


class TestDisorderOfPcsOutput:
    def test_pcs_disorder_is_repairable(self, paper_trace):
        """Section 3.4: Pcs output may be disordered across a region's
        candidate sets; punctuations let downstream repair it."""
        result = GroupAwareEngine(
            paper_group(),
            algorithm="per_candidate_set",
            output_strategy=PerCandidateSetOutput(),
        ).run(paper_trace)
        buffer = OrderingBuffer()
        for emission in result.emissions:
            buffer.offer(emission)
        buffer.flush()
        buffer.assert_ordered()
        assert len(buffer.released) == len(result.emissions)
