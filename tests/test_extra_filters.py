"""Unit tests for the section-5.1 extension filters: reservoir sampling,
Euclidean location delta compression and band-transition membership."""

import math

import pytest

from repro.core.engine import GroupAwareEngine, SelfInterestedEngine
from repro.core.tuples import Trace
from repro.filters.location import LocationDeltaFilter
from repro.filters.membership import Band, BandTransitionFilter
from repro.filters.reservoir import ReservoirSamplingFilter
from repro.filters.validate import replay_candidate_sets, validate_outputs


class TestReservoirFilter:
    def test_validates_parameters(self):
        with pytest.raises(ValueError):
            ReservoirSamplingFilter("r", reservoir_size=0, window=10)
        with pytest.raises(ValueError):
            ReservoirSamplingFilter("r", reservoir_size=5, window=3)

    def test_candidate_set_is_whole_window(self):
        trace = Trace.from_values([float(i) for i in range(20)], attribute="v")
        sets = replay_candidate_sets(
            lambda: ReservoirSamplingFilter("r", reservoir_size=3, window=10), trace
        )
        assert len(sets) == 2
        assert all(len(cs) == 10 for cs in sets)
        assert all(cs.degree == 3 for cs in sets)

    def test_partial_window_flushed_with_clamped_degree(self):
        trace = Trace.from_values([float(i) for i in range(12)], attribute="v")
        sets = replay_candidate_sets(
            lambda: ReservoirSamplingFilter("r", reservoir_size=5, window=10), trace
        )
        assert len(sets) == 2
        assert sets[1].degree == 2  # only 2 tuples remained

    def test_engine_satisfies_degree(self):
        trace = Trace.from_values([float(i) for i in range(40)], attribute="v")
        flt = ReservoirSamplingFilter("r", reservoir_size=3, window=10)
        result = GroupAwareEngine([flt]).run(trace)
        assert len(result.outputs_for("r")) == 12  # 4 windows x 3 samples

    def test_self_interested_reservoir_counts(self):
        trace = Trace.from_values([float(i) for i in range(30)], attribute="v")
        flt = ReservoirSamplingFilter("r", reservoir_size=4, window=10)
        result = SelfInterestedEngine([flt]).run(trace)
        assert len(result.outputs_for("r")) == 12

    def test_two_reservoirs_share_samples(self):
        trace = Trace.from_values([float(i) for i in range(100)], attribute="v")

        def group():
            return [
                ReservoirSamplingFilter("r1", reservoir_size=3, window=20, seed=1),
                ReservoirSamplingFilter("r2", reservoir_size=4, window=20, seed=2),
            ]

        ga = GroupAwareEngine(group()).run(trace)
        si = SelfInterestedEngine(group()).run(trace)
        # Coordinated reservoirs overlap their picks; independent ones don't.
        assert ga.output_count <= si.output_count

    def test_taxonomy(self):
        flt = ReservoirSamplingFilter("r", reservoir_size=3, window=10)
        assert flt.taxonomy.output_selection.quantity == 3
        assert not flt.stateful


def _spiral_trace(n=200, step=1.0):
    """A position trace spiralling outward: steady movement."""
    xs, ys = [], []
    for i in range(n):
        radius = 1.0 + 0.05 * i
        xs.append(radius * math.cos(0.2 * i) * step)
        ys.append(radius * math.sin(0.2 * i) * step)
    return Trace.from_columns({"x": xs, "y": ys}, interval_ms=10)


class TestLocationFilter:
    def test_validates_axiom(self):
        with pytest.raises(ValueError):
            LocationDeltaFilter("l", "x", "y", delta=2.0, slack=1.5)
        with pytest.raises(ValueError):
            LocationDeltaFilter("l", "x", "y", delta=0.0, slack=0.0)

    def test_references_spaced_by_delta(self):
        trace = _spiral_trace()
        flt = LocationDeltaFilter("l", "x", "y", delta=3.0, slack=1.0)
        sets = replay_candidate_sets(
            lambda: LocationDeltaFilter("l", "x", "y", delta=3.0, slack=1.0), trace
        )
        assert len(sets) >= 3
        # Consecutive references are at least delta - 2*slack apart.
        references = [cs.reference for cs in sets]
        for first, second in zip(references, references[1:]):
            dx = first.value("x") - second.value("x")
            dy = first.value("y") - second.value("y")
            assert math.hypot(dx, dy) >= 3.0 - 2 * 1.0 - 1e-9

    def test_candidates_within_slack_of_reference(self):
        trace = _spiral_trace()
        sets = replay_candidate_sets(
            lambda: LocationDeltaFilter("l", "x", "y", delta=3.0, slack=1.0), trace
        )
        for cs in sets:
            rx, ry = cs.reference.value("x"), cs.reference.value("y")
            for item in cs.tuples:
                distance = math.hypot(item.value("x") - rx, item.value("y") - ry)
                assert distance <= 1.0 + 1e-9

    def test_group_aware_never_worse_than_si(self):
        trace = _spiral_trace(n=300)

        def group():
            return [
                LocationDeltaFilter("a", "x", "y", delta=2.0, slack=1.0),
                LocationDeltaFilter("b", "x", "y", delta=3.0, slack=1.5),
            ]

        ga = GroupAwareEngine(group()).run(trace)
        si = SelfInterestedEngine(group()).run(trace)
        assert ga.output_count <= si.output_count

    def test_quality_validates(self):
        trace = _spiral_trace(n=300)
        flt = LocationDeltaFilter("a", "x", "y", delta=2.0, slack=1.0)
        result = GroupAwareEngine([flt]).run(trace)
        sets = replay_candidate_sets(
            lambda: LocationDeltaFilter("a", "x", "y", delta=2.0, slack=1.0), trace
        )
        assert validate_outputs(sets, result.outputs_for("a")).ok

    def test_stationary_entity_emits_once(self):
        trace = Trace.from_columns({"x": [0.0] * 50, "y": [0.0] * 50})
        flt = LocationDeltaFilter("l", "x", "y", delta=5.0, slack=2.0)
        result = GroupAwareEngine([flt]).run(trace)
        assert len(result.outputs_for("l")) == 1  # the seed position only


BANDS = [
    Band("safe", 0.0, 10.0),
    Band("warning", 10.0 + 1e-9, 50.0),
    Band("danger", 50.0 + 1e-9, 1e9),
]


class TestBandTransitionFilter:
    def test_validates_parameters(self):
        with pytest.raises(ValueError):
            BandTransitionFilter("b", "v", [])
        with pytest.raises(ValueError):
            BandTransitionFilter("b", "v", BANDS, witness_window=0)
        with pytest.raises(ValueError, match="unique"):
            BandTransitionFilter("b", "v", [Band("x", 0, 1), Band("x", 2, 3)])
        with pytest.raises(ValueError):
            Band("bad", 5.0, 1.0)

    def test_detects_transitions(self):
        values = [1.0, 2.0, 20.0, 22.0, 60.0, 61.0, 5.0]
        trace = Trace.from_values(values, attribute="v")
        flt = BandTransitionFilter("b", "v", BANDS, witness_window=2)
        si = SelfInterestedEngine([flt]).run(trace)
        transitions = [t.value("v") for t in si.outputs_for("b")]
        assert transitions == [1.0, 20.0, 60.0, 5.0]

    def test_witness_sets_quality_equivalent(self):
        values = [1.0, 2.0, 20.0, 22.0, 25.0, 60.0]
        trace = Trace.from_values(values, attribute="v")
        sets = replay_candidate_sets(
            lambda: BandTransitionFilter("b", "v", BANDS, witness_window=3), trace
        )
        # The warning-entry set holds up to 3 witnesses: 20, 22, 25.
        warning_set = sets[1]
        assert [t.value("v") for t in warning_set.tuples] == [20.0, 22.0, 25.0]

    def test_group_sharing_on_transitions(self):
        values = [1.0] * 5 + [20.0, 21.0, 22.0] + [60.0, 62.0] + [1.0] * 3
        trace = Trace.from_values(values, attribute="v")

        def group():
            return [
                BandTransitionFilter("w1", "v", BANDS, witness_window=3),
                BandTransitionFilter("w2", "v", BANDS, witness_window=2),
            ]

        ga = GroupAwareEngine(group()).run(trace)
        si = SelfInterestedEngine(group()).run(trace)
        assert ga.output_count <= si.output_count
        # Both watchers agree on transitions, so sharing is total.
        assert ga.output_count == len(si.outputs_for("w1"))

    def test_out_of_band_values_ignored(self):
        bands = [Band("low", 0.0, 1.0)]
        values = [0.5, 99.0, 0.6]
        trace = Trace.from_values(values, attribute="v")
        flt = BandTransitionFilter("b", "v", bands, witness_window=1)
        si = SelfInterestedEngine([flt]).run(trace)
        # 99.0 belongs to no band; re-entry at 0.6 is not a transition
        # (the band never changed).
        assert [t.value("v") for t in si.outputs_for("b")] == [0.5]

    def test_classify(self):
        flt = BandTransitionFilter("b", "v", BANDS)
        assert flt.classify(5.0) == "safe"
        assert flt.classify(20.0) == "warning"
        assert flt.classify(-1.0) is None
