"""Unit tests for Scribe-style tuple-level multicast."""

import pytest

from repro.net.accounting import BandwidthAccounting
from repro.net.multicast import ScribeMulticast
from repro.net.overlay import OverlayNetwork

NAMES = [f"node{i}" for i in range(8)]


def _system():
    overlay = OverlayNetwork(NAMES)
    multicast = ScribeMulticast(overlay, software_overhead_ms=50.0)
    multicast.create_group("g")
    return overlay, multicast


class TestGroups:
    def test_create_duplicate_rejected(self):
        _, multicast = _system()
        with pytest.raises(ValueError):
            multicast.create_group("g")

    def test_unknown_group(self):
        _, multicast = _system()
        with pytest.raises(KeyError):
            multicast.group("nope")

    def test_join_registers_member(self):
        _, multicast = _system()
        multicast.join("g", "app1", "node3")
        assert multicast.group("g").members == {"app1": "node3"}

    def test_double_join_rejected(self):
        _, multicast = _system()
        multicast.join("g", "app1", "node3")
        with pytest.raises(ValueError):
            multicast.join("g", "app1", "node4")

    def test_tree_paths_lead_to_rendezvous(self):
        _, multicast = _system()
        for index, name in enumerate(NAMES):
            multicast.join("g", f"app{index}", name)
        group = multicast.group("g")
        for name in NAMES:
            current = name
            hops = 0
            while current != group.rendezvous.name:
                current = group.parent[current]
                hops += 1
                assert hops < 50  # no cycles


class TestPublish:
    def test_delivers_to_all_recipients(self):
        _, multicast = _system()
        for index in range(4):
            multicast.join("g", f"app{index}", NAMES[index + 1])
        receipt = multicast.publish(
            "g", NAMES[0], frozenset({"app0", "app2"}), size_bytes=64, send_ms=100.0
        )
        assert set(receipt.delivery_ms) == {"app0", "app2"}
        for delivered in receipt.delivery_ms.values():
            assert delivered > 100.0

    def test_software_overhead_dominates(self):
        _, multicast = _system()
        multicast.join("g", "app0", NAMES[1])
        receipt = multicast.publish(
            "g", NAMES[0], frozenset({"app0"}), size_bytes=64, send_ms=0.0
        )
        assert receipt.delivery_ms["app0"] >= 50.0

    def test_empty_recipient_set_costs_nothing(self):
        _, multicast = _system()
        multicast.join("g", "app0", NAMES[1])
        receipt = multicast.publish("g", NAMES[0], frozenset(), 64, 0.0)
        assert receipt.delivery_ms == {}
        assert receipt.link_transmissions == 0

    def test_unknown_recipient_rejected(self):
        _, multicast = _system()
        multicast.join("g", "app0", NAMES[1])
        with pytest.raises(KeyError, match="not members"):
            multicast.publish("g", NAMES[0], frozenset({"ghost"}), 64, 0.0)

    def test_at_most_once_per_link(self):
        """Section 1.2: 'each tuple is transmitted at most once on any
        link', even with many recipients behind shared tree edges."""
        overlay = OverlayNetwork(NAMES)
        accounting = BandwidthAccounting()
        multicast = ScribeMulticast(overlay, accounting)
        multicast.create_group("g")
        for index, name in enumerate(NAMES):
            multicast.join("g", f"app{index}", name)
        before = {link: usage.messages for link, usage in accounting.links.items()}
        multicast.publish(
            "g",
            NAMES[0],
            frozenset(f"app{i}" for i in range(len(NAMES))),
            size_bytes=64,
            send_ms=0.0,
        )
        for link, usage in accounting.links.items():
            assert usage.messages - before.get(link, 0) <= 1

    def test_pruning_skips_uninterested_branches(self):
        """Recipient subsets must not pay for the full group tree."""
        overlay = OverlayNetwork(NAMES)
        multicast = ScribeMulticast(overlay)
        multicast.create_group("g")
        for index, name in enumerate(NAMES):
            multicast.join("g", f"app{index}", name)
        everyone = multicast.publish(
            "g", NAMES[0], frozenset(f"app{i}" for i in range(8)), 64, 0.0
        )
        subset = multicast.publish("g", NAMES[0], frozenset({"app1"}), 64, 0.0)
        assert subset.link_transmissions <= everyone.link_transmissions

    def test_accounting_totals(self):
        overlay = OverlayNetwork(NAMES)
        accounting = BandwidthAccounting()
        multicast = ScribeMulticast(overlay, accounting)
        multicast.create_group("g")
        multicast.join("g", "app0", NAMES[2])
        receipt = multicast.publish("g", NAMES[0], frozenset({"app0"}), 100, 0.0)
        assert accounting.total_messages == receipt.link_transmissions
        assert accounting.total_bytes == receipt.bytes_sent


class TestAccounting:
    def test_local_handoff_not_counted(self):
        accounting = BandwidthAccounting()
        accounting.record("a", "a", 100)
        assert accounting.total_messages == 0

    def test_merge(self):
        first = BandwidthAccounting()
        first.record("a", "b", 10)
        second = BandwidthAccounting()
        second.record("a", "b", 5)
        second.record("b", "c", 7)
        first.merge(second)
        assert first.total_bytes == 22
        assert first.links[("a", "b")].messages == 2

    def test_busiest_links(self):
        accounting = BandwidthAccounting()
        accounting.record("a", "b", 10)
        accounting.record("c", "d", 100)
        top = accounting.busiest_links(1)
        assert top[0][0] == ("c", "d")
