"""Unit tests for the DHT overlay and link model."""

import math

import pytest

from repro.net.overlay import LinkModel, OverlayNetwork, key_for

NAMES = [f"node{i}" for i in range(16)]


class TestKeyFor:
    def test_stable(self):
        assert key_for("source:buoy") == key_for("source:buoy")

    def test_distinct(self):
        assert key_for("a") != key_for("b")

    def test_in_id_space(self):
        assert 0 <= key_for("anything") < (1 << 32)


class TestLinkModel:
    def test_transfer_time(self):
        link = LinkModel(bandwidth_mbps=1.0, latency_ms=5.0)
        # 125 bytes = 1000 bits = 1 ms on a 1 Mbps link.
        assert link.transfer_ms(125) == pytest.approx(6.0)

    def test_zero_bytes_is_latency_only(self):
        link = LinkModel(bandwidth_mbps=1.0, latency_ms=5.0)
        assert link.transfer_ms(0) == 5.0

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            LinkModel().transfer_ms(-1)


class TestOverlayNetwork:
    def test_unique_names_required(self):
        with pytest.raises(ValueError, match="unique"):
            OverlayNetwork(["a", "a"])

    def test_needs_nodes(self):
        with pytest.raises(ValueError, match="at least one"):
            OverlayNetwork([])

    def test_unknown_node(self):
        overlay = OverlayNetwork(NAMES)
        with pytest.raises(KeyError):
            overlay.node("ghost")

    def test_successor_owns_key(self):
        overlay = OverlayNetwork(NAMES)
        for key in (0, 123456, (1 << 32) - 1, key_for("x")):
            owner = overlay.successor(key)
            assert owner.name in NAMES

    def test_successor_wraps_around(self):
        overlay = OverlayNetwork(NAMES)
        max_id = max(overlay.node(name).node_id for name in NAMES)
        wrapped = overlay.successor(max_id + 1)
        min_id = min(overlay.node(name).node_id for name in NAMES)
        assert wrapped.node_id == min_id

    def test_route_reaches_owner(self):
        overlay = OverlayNetwork(NAMES)
        for source in NAMES[:4]:
            for key in (key_for("g1"), key_for("g2"), 42):
                path = overlay.route(source, key)
                assert path[0].name == source
                assert path[-1] == overlay.successor(key)

    def test_route_hop_count_logarithmic(self):
        overlay = OverlayNetwork([f"n{i}" for i in range(64)])
        worst = 0
        for source in ("n0", "n13", "n42"):
            for target in range(0, 1 << 32, 1 << 28):
                worst = max(worst, len(overlay.route(source, target)) - 1)
        assert worst <= 3 * math.ceil(math.log2(64))

    def test_route_to_self(self):
        overlay = OverlayNetwork(NAMES)
        node = overlay.node("node3")
        path = overlay.route("node3", node.node_id)
        assert path == [node]

    def test_route_between(self):
        overlay = OverlayNetwork(NAMES)
        path = overlay.route_between("node0", "node9")
        assert path[0].name == "node0"
        assert path[-1].name == "node9"

    def test_single_node_overlay(self):
        overlay = OverlayNetwork(["solo"])
        assert overlay.route("solo", 12345)[-1].name == "solo"
