"""Integration: quality specs -> work-flow propagation -> deployment ->
group-aware dissemination over the overlay.

Exercises the full Figure 2.2 / 3.1 / 4.1 pipeline: applications declare
QualitySpecs, requirements propagate source-ward through the work-flow
graph, deployment planning configures a group-aware service at the
data-sharing juncture, and the service disseminates over the simulated
Solar overlay.
"""

import pytest

from repro.core.engine import GroupAwareEngine, SelfInterestedEngine
from repro.filters.spec import format_spec, parse_filter
from repro.net.overlay import OverlayNetwork
from repro.net.pubsub import StreamingSystem
from repro.qos import QualitySpec, propagate
from repro.sources import namos_trace
from repro.workflow import WorkflowGraph, plan_deployment


@pytest.fixture(scope="module")
def deployment():
    graph = WorkflowGraph()
    graph.add_source("buoy")
    graph.add_application("marine-lab")
    graph.add_application("field-station")
    graph.add_application("dashboard")
    for app in graph.applications():
        graph.connect("buoy", app)
    graph.validate()

    specs = {
        "marine-lab": QualitySpec(
            "marine-lab", "DC1(tmpr4, 0.0310, 0.0155)", latency_tolerance_ms=400
        ),
        "field-station": QualitySpec(
            "field-station", "DC1(tmpr4, 0.0620, 0.0310)", latency_tolerance_ms=900
        ),
        "dashboard": QualitySpec("dashboard", "DC1(tmpr4, 0.0480, 0.0240)"),
    }
    propagated = propagate(graph, specs)
    plans = plan_deployment(graph, propagated)
    return graph, specs, propagated, plans


class TestPipeline:
    def test_source_is_the_group_juncture(self, deployment):
        _, _, propagated, plans = deployment
        assert propagated.group_junctures() == ["buoy"]
        assert len(plans) == 1
        assert plans[0].node == "buoy"
        assert plans[0].group_aware

    def test_group_constraint_conjunction(self, deployment):
        _, _, _, plans = deployment
        assert plans[0].time_constraint.max_delay_ms == 400

    def test_planned_engine_meets_constraint_and_saves(self, deployment):
        _, _, _, plans = deployment
        trace = namos_trace(n=1000, seed=7)
        plan = plans[0]
        engine = GroupAwareEngine(
            plan.build_filters(),
            algorithm="region",
            time_constraint=plan.time_constraint,
        )
        result = engine.run(trace)
        baseline = SelfInterestedEngine(plan.build_filters()).run(trace)
        assert result.output_count <= baseline.output_count
        for emission in result.emissions:
            assert emission.delay_ms <= plan.time_constraint.max_delay_ms + 10.0

    def test_plan_feeds_streaming_system(self, deployment):
        _, _, _, plans = deployment
        plan = plans[0]
        overlay = OverlayNetwork([f"n{i}" for i in range(5)])
        system = StreamingSystem(overlay)
        system.add_source("buoy", "n0")
        for index, spec in enumerate(plan.specs):
            system.subscribe(
                spec.app_name, f"n{index + 1}", "buoy", spec.instantiate()
            )
        trace = namos_trace(n=600, seed=7)
        result = system.disseminate(
            "buoy",
            trace,
            algorithm="region",
            time_constraint=plan.time_constraint,
        )
        assert result.engine_result.output_count > 0
        delivered_apps = {d.app_name for d in result.deliveries}
        assert delivered_apps == {spec.app_name for spec in plan.specs}


class TestNewSpecNotation:
    @pytest.mark.parametrize(
        "spec,cls_name",
        [
            ("RS(3, 10)", "ReservoirSamplingFilter"),
            ("LOC(x, y, 2.0, 1.0)", "LocationDeltaFilter"),
            ("BAND(v, 3, safe:0:10, danger:10.1:100)", "BandTransitionFilter"),
        ],
    )
    def test_parse_and_round_trip(self, spec, cls_name):
        flt = parse_filter(spec)
        assert type(flt).__name__ == cls_name
        reparsed = parse_filter(format_spec(flt))
        assert type(reparsed).__name__ == cls_name

    def test_malformed_band_rejected(self):
        with pytest.raises(ValueError, match="name:low:high"):
            parse_filter("BAND(v, 3, broken)")

    def test_rs_arity(self):
        with pytest.raises(ValueError):
            parse_filter("RS(3)")

    def test_loc_arity(self):
        with pytest.raises(ValueError):
            parse_filter("LOC(x, y, 2.0)")

    def test_quality_spec_accepts_new_notation(self):
        spec = QualitySpec("sampler", "RS(5, 50)")
        assert spec.instantiate().reservoir_size == 5
