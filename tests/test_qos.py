"""Unit tests for quality specifications and propagation."""

import pytest

from repro.qos import DegradationPolicy, QualitySpec, propagate, session_limits
from repro.workflow import WorkflowGraph


def _spec(app, delta=2.0, latency=None, priority=0):
    return QualitySpec(
        app_name=app,
        filter_spec=f"DC1(temp, {delta}, {delta / 2})",
        latency_tolerance_ms=latency,
        priority=priority,
    )


class TestQualitySpec:
    def test_validates_filter_spec(self):
        with pytest.raises(ValueError):
            QualitySpec("app", "DC1(temp, broken)")

    def test_validates_app_name(self):
        with pytest.raises(ValueError):
            QualitySpec("", "DC1(temp, 2, 1)")

    def test_validates_latency(self):
        with pytest.raises(ValueError):
            QualitySpec("app", "DC1(temp, 2, 1)", latency_tolerance_ms=0)

    def test_instantiate_names_after_app(self):
        flt = _spec("tracker").instantiate()
        assert flt.name == "tracker"
        assert flt.delta == 2.0

    def test_group_constraint_is_minimum(self):
        a = _spec("a", latency=200)
        b = _spec("b", latency=80)
        c = _spec("c")  # best effort
        constraint = a.group_time_constraint(b, c)
        assert constraint.max_delay_ms == 80

    def test_group_constraint_all_best_effort(self):
        assert _spec("a").group_time_constraint(_spec("b")) is None


class TestDegradationPolicy:
    def _policy(self):
        return DegradationPolicy(
            app_name="tracker",
            levels=(
                _spec("tracker", delta=1.0),
                _spec("tracker", delta=2.0),
                _spec("tracker", delta=5.0),
            ),
            bandwidth_floors_kbps=(500.0, 200.0, 0.0),
        )

    def test_best_level_when_bandwidth_plenty(self):
        policy = self._policy()
        assert policy.level_for_bandwidth(1000.0).instantiate().delta == 1.0

    def test_degrades_progressively(self):
        policy = self._policy()
        assert policy.level_for_bandwidth(300.0).instantiate().delta == 2.0
        assert policy.level_for_bandwidth(50.0).instantiate().delta == 5.0

    def test_no_floors_always_best(self):
        policy = DegradationPolicy("tracker", (_spec("tracker", delta=1.0),))
        assert policy.level_for_bandwidth(0.0).instantiate().delta == 1.0

    def test_validates_levels(self):
        with pytest.raises(ValueError, match="at least one"):
            DegradationPolicy("tracker", ())
        with pytest.raises(ValueError, match="same application"):
            DegradationPolicy("tracker", (_spec("other"),))

    def test_validates_floors(self):
        with pytest.raises(ValueError, match="one bandwidth floor"):
            DegradationPolicy(
                "tracker",
                (_spec("tracker"),),
                bandwidth_floors_kbps=(1.0, 2.0),
            )
        with pytest.raises(ValueError, match="non-increasing"):
            DegradationPolicy(
                "tracker",
                (_spec("tracker", delta=1.0), _spec("tracker", delta=2.0)),
                bandwidth_floors_kbps=(100.0, 200.0),
            )

    def test_equal_floors_are_non_increasing(self):
        """Ties are legal: two levels may share a floor (the coarser one
        simply never gets selected by bandwidth alone)."""
        policy = DegradationPolicy(
            "tracker",
            (_spec("tracker", delta=1.0), _spec("tracker", delta=2.0)),
            bandwidth_floors_kbps=(100.0, 100.0),
        )
        assert policy.level_for_bandwidth(150.0).instantiate().delta == 1.0

    def test_single_level_policy(self):
        """A one-rung ladder is valid and always selects its only level,
        however starved the link is."""
        policy = DegradationPolicy(
            "tracker",
            (_spec("tracker", delta=1.0),),
            bandwidth_floors_kbps=(500.0,),
        )
        assert policy.level_for_bandwidth(1000.0).instantiate().delta == 1.0
        # Below the only floor there is nothing coarser to fall back to.
        assert policy.level_for_bandwidth(0.0).instantiate().delta == 1.0

    def test_exact_floor_boundary_selects_that_level(self):
        """``available == floor`` satisfies the floor (>=, not >)."""
        policy = self._policy()
        assert policy.level_for_bandwidth(500.0).instantiate().delta == 1.0
        assert policy.level_for_bandwidth(499.999).instantiate().delta == 2.0
        assert policy.level_for_bandwidth(200.0).instantiate().delta == 2.0


def _diamond() -> WorkflowGraph:
    """source -> op -> {app1, app2}; source -> app3 directly."""
    graph = WorkflowGraph()
    graph.add_source("src")
    graph.add_operator("op")
    graph.add_application("app1")
    graph.add_application("app2")
    graph.add_application("app3")
    graph.connect("src", "op")
    graph.connect("op", "app1")
    graph.connect("op", "app2")
    graph.connect("src", "app3")
    return graph


class TestPropagation:
    def test_specs_accumulate_source_ward(self):
        graph = _diamond()
        specs = {name: _spec(name) for name in ("app1", "app2", "app3")}
        propagated = propagate(graph, specs)
        assert [s.app_name for s in propagated.specs_at("op")] == ["app1", "app2"]
        assert [s.app_name for s in propagated.specs_at("src")] == [
            "app1",
            "app2",
            "app3",
        ]

    def test_group_junctures(self):
        graph = _diamond()
        specs = {name: _spec(name) for name in ("app1", "app2", "app3")}
        propagated = propagate(graph, specs)
        assert propagated.group_junctures() == ["op", "src"]

    def test_single_subscriber_is_not_a_juncture(self):
        graph = WorkflowGraph()
        graph.add_source("src")
        graph.add_application("solo")
        graph.connect("src", "solo")
        propagated = propagate(graph, {"solo": _spec("solo")})
        assert propagated.group_junctures() == []
        assert [s.app_name for s in propagated.specs_at("src")] == ["solo"]

    def test_missing_spec_rejected(self):
        graph = _diamond()
        with pytest.raises(ValueError, match="without quality specs"):
            propagate(graph, {"app1": _spec("app1")})

    def test_unknown_app_rejected(self):
        graph = _diamond()
        specs = {name: _spec(name) for name in ("app1", "app2", "app3")}
        specs["ghost"] = _spec("ghost")
        with pytest.raises(ValueError, match="unknown applications"):
            propagate(graph, specs)

    def test_deep_chain_accumulates_transitively(self):
        """src -> op1 -> op2 -> {app1, app2}: the juncture requirement is
        visible all the way back at the source, not just one hop up."""
        graph = WorkflowGraph()
        graph.add_source("src")
        graph.add_operator("op1")
        graph.add_operator("op2")
        graph.add_application("app1")
        graph.add_application("app2")
        graph.connect("src", "op1")
        graph.connect("op1", "op2")
        graph.connect("op2", "app1")
        graph.connect("op2", "app2")
        propagated = propagate(graph, {a: _spec(a) for a in ("app1", "app2")})
        for node in ("src", "op1", "op2"):
            assert [s.app_name for s in propagated.specs_at(node)] == [
                "app1",
                "app2",
            ]
        assert propagated.group_junctures() == ["op1", "op2", "src"]

    def test_multipath_app_counted_once(self):
        """An application reachable through two operator paths must not
        inflate the upstream node into a phantom juncture."""
        graph = WorkflowGraph()
        graph.add_source("src")
        graph.add_operator("opA")
        graph.add_operator("opB")
        graph.add_application("app1")
        graph.connect("src", "opA")
        graph.connect("src", "opB")
        graph.connect("opA", "app1")
        graph.connect("opB", "app1")
        propagated = propagate(graph, {"app1": _spec("app1")})
        assert [s.app_name for s in propagated.specs_at("src")] == ["app1"]
        assert propagated.group_junctures() == []


class TestSessionLimits:
    """QoS spec -> live-session queue/batching bounds (Session QoS)."""

    def test_defaults_pass_through_for_unconstrained_spec(self):
        limits = session_limits(_spec("app"))
        assert limits.queue_capacity == 16
        assert limits.overflow == "block"
        assert limits.batch_max_items == 8
        assert limits.batch_max_delay_ms == 50.0

    def test_latency_tolerance_bounds_batch_delay(self):
        limits = session_limits(_spec("app", latency=40.0))
        assert limits.batch_max_delay_ms == 10.0  # a quarter of tolerance
        # A generous tolerance never *raises* the broker default.
        loose = session_limits(_spec("app", latency=10_000.0))
        assert loose.batch_max_delay_ms == 50.0

    def test_latency_tolerance_prefers_fresh_over_blocking(self):
        limits = session_limits(_spec("app", latency=100.0))
        assert limits.overflow == "drop_oldest"
        # A stricter broker default is respected.
        strict = session_limits(
            _spec("app", latency=100.0), overflow="disconnect"
        )
        assert strict.overflow == "disconnect"

    def test_priority_scales_queue_capacity(self):
        assert session_limits(_spec("app", priority=1)).queue_capacity == 32
        assert session_limits(_spec("app", priority=3)).queue_capacity == 128
        assert session_limits(_spec("app", priority=-2)).queue_capacity == 4
        assert (
            session_limits(_spec("app", priority=-10)).queue_capacity == 1
        )  # floored

    def test_priority_is_clamped(self):
        """Profiles arrive over the wire; a huge priority must not buy an
        unbounded queue (or a giant integer allocation)."""
        huge = session_limits(_spec("app", priority=1_000_000_000))
        assert huge.queue_capacity == 16 << 10
        tiny = session_limits(_spec("app", priority=-1_000_000_000))
        assert tiny.queue_capacity == 1

    def test_broker_defaults_are_the_fallback(self):
        limits = session_limits(
            _spec("app"),
            queue_capacity=4,
            overflow="drop_oldest",
            batch_max_items=2,
            batch_max_delay_ms=5.0,
        )
        assert limits.queue_capacity == 4
        assert limits.overflow == "drop_oldest"
        assert limits.batch_max_items == 2
        assert limits.batch_max_delay_ms == 5.0
