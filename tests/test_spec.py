"""Unit tests for the textual filter-spec parser."""

import pytest

from repro.filters.delta import DeltaCompressionFilter, StatefulDeltaCompressionFilter
from repro.filters.multiattr import AveragedDeltaFilter
from repro.filters.sampling import StratifiedSamplingFilter
from repro.filters.spec import format_spec, parse_filter, parse_group
from repro.filters.trend import TrendDeltaFilter


class TestParseFilter:
    def test_dc(self):
        flt = parse_filter("DC(fluoro, 0.0301, 0.0150)")
        assert isinstance(flt, DeltaCompressionFilter)
        assert flt.attribute == "fluoro"
        assert flt.delta == 0.0301
        assert flt.slack == 0.0150

    def test_dc1_alias(self):
        flt = parse_filter("DC1(tmpr4, 0.0310, 0.0155)")
        assert isinstance(flt, DeltaCompressionFilter)

    def test_sdc_stateful(self):
        flt = parse_filter("SDC(tmpr4, 0.0310, 0.0155)")
        assert isinstance(flt, StatefulDeltaCompressionFilter)
        assert flt.stateful

    def test_dc2(self):
        flt = parse_filter("DC2(fluoro, 11.59, 5.79)")
        assert isinstance(flt, TrendDeltaFilter)
        assert flt.delta == 11.59

    def test_dc3(self):
        flt = parse_filter("DC3(tmpr2, tmpr4, tmpr6, 0.0300, 0.0150)")
        assert isinstance(flt, AveragedDeltaFilter)
        assert flt.attributes == ("tmpr2", "tmpr4", "tmpr6")

    def test_ss(self):
        flt = parse_filter("SS(thermo4, 1000, 0.15, 50, 20)")
        assert isinstance(flt, StratifiedSamplingFilter)
        assert flt.interval_ms == 1000
        assert flt.threshold == 0.15
        assert flt.high_rate_percent == 50
        assert flt.low_rate_percent == 20
        assert flt.prescription == "random"

    def test_ss_with_prescription(self):
        flt = parse_filter("SS(thermo4, 1000, 0.15, 50, 20, top)")
        assert flt.prescription == "top"

    def test_case_insensitive_type(self):
        assert isinstance(parse_filter("dc1(x, 1, 0.2)"), DeltaCompressionFilter)

    def test_custom_name(self):
        flt = parse_filter("DC1(x, 1, 0.2)", name="app-7")
        assert flt.name == "app-7"

    def test_auto_names_unique(self):
        a = parse_filter("DC1(x, 1, 0.2)")
        b = parse_filter("DC1(x, 1, 0.2)")
        assert a.name != b.name

    @pytest.mark.parametrize(
        "bad",
        [
            "DC1(x, 1)",  # missing slack
            "DC1(x, 1, 0.2, 3)",  # extra arg
            "DC1(x, one, 0.2)",  # non-numeric
            "DC3(a, 1, 0.2)",  # too few attrs
            "SS(x, 1000, 0.1, 50)",  # missing rate
            "WAT(x, 1, 0.2)",  # unknown type
            "DC1 x, 1, 0.2",  # malformed
        ],
    )
    def test_rejects_malformed(self, bad):
        with pytest.raises(ValueError):
            parse_filter(bad)


class TestParseGroup:
    def test_names_unique_even_for_identical_specs(self):
        group = parse_group(["DC1(x, 1, 0.2)", "DC1(x, 1, 0.2)"])
        assert group[0].name != group[1].name

    def test_prefix(self):
        group = parse_group(["DC1(x, 1, 0.2)"], prefix="app")
        assert group[0].name.startswith("app0:")


class TestFormatSpec:
    @pytest.mark.parametrize(
        "spec",
        [
            "DC1(fluoro, 0.0301, 0.015)",
            "SDC(tmpr4, 0.031, 0.0155)",
            "DC2(fluoro, 11.59, 5.79)",
            "DC3(tmpr2, tmpr4, tmpr6, 0.03, 0.015)",
            "SS(thermo4, 1000, 0.15, 50, 20)",
        ],
    )
    def test_round_trip(self, spec):
        flt = parse_filter(spec)
        reparsed = parse_filter(format_spec(flt))
        assert type(reparsed) is type(flt)

    def test_unknown_type_raises(self):
        class Weird:
            pass

        with pytest.raises(TypeError):
            format_spec(Weird())
