"""Unit tests for stratified sampling filters (Chapter 5)."""

import pytest

from repro.core.engine import GroupAwareEngine, SelfInterestedEngine
from repro.core.tuples import Trace
from repro.filters.sampling import StratifiedSamplingFilter
from repro.filters.validate import replay_candidate_sets, validate_outputs


def _trace(values, interval_ms=10):
    return Trace.from_values(values, attribute="x", interval_ms=interval_ms)


def _filter(threshold=5.0, high=50, low=20, interval=100, prescription="random"):
    return StratifiedSamplingFilter(
        "ss", "x", interval_ms=interval, threshold=threshold,
        high_rate_percent=high, low_rate_percent=low, prescription=prescription,
    )


class TestConstruction:
    def test_validates_interval(self):
        with pytest.raises(ValueError):
            StratifiedSamplingFilter("s", "x", 0, 1, 50, 20)

    def test_validates_rates(self):
        with pytest.raises(ValueError):
            StratifiedSamplingFilter("s", "x", 100, 1, 0, 20)
        with pytest.raises(ValueError):
            StratifiedSamplingFilter("s", "x", 100, 1, 50, 120)

    def test_validates_threshold(self):
        with pytest.raises(ValueError):
            StratifiedSamplingFilter("s", "x", 100, -1, 50, 20)

    def test_taxonomy(self):
        flt = _filter()
        assert flt.taxonomy.output_selection.unit == "percent"
        assert not flt.stateful


class TestSegmentation:
    def test_one_set_per_segment(self):
        # 30 tuples at 10 ms with 100 ms interval -> 3 segments of 10.
        sets = replay_candidate_sets(lambda: _filter(), _trace([0.0] * 30))
        assert len(sets) == 3
        assert all(len(cs) == 10 for cs in sets)

    def test_partial_final_segment_flushed(self):
        sets = replay_candidate_sets(lambda: _filter(), _trace([0.0] * 25))
        assert len(sets) == 3
        assert len(sets[-1]) == 5

    def test_degree_low_for_quiet_segment(self):
        flt = _filter(threshold=5.0, high=50, low=20)
        members = _trace([0.0] * 10)
        assert flt.degree_for(list(members)) == 2  # 20% of 10

    def test_degree_high_for_dynamic_segment(self):
        flt = _filter(threshold=5.0, high=50, low=20)
        members = list(_trace([0.0, 10.0] * 5))
        assert flt.degree_for(members) == 5  # 50% of 10

    def test_degree_at_least_one(self):
        flt = _filter(threshold=5.0, high=50, low=1)
        members = list(_trace([0.0] * 3))
        assert flt.degree_for(members) == 1

    def test_sets_carry_degree(self):
        values = [0.0] * 10 + [0.0, 10.0] * 5
        sets = replay_candidate_sets(lambda: _filter(), _trace(values))
        assert sets[0].degree == 2
        assert sets[1].degree == 5


class TestPrescriptions:
    def test_top_restricts_eligibility(self):
        values = list(range(10))  # range 9 >= threshold 5 -> high rate 50%
        sets = replay_candidate_sets(
            lambda: _filter(prescription="top"), _trace([float(v) for v in values])
        )
        eligible = [t.value("x") for t in sets[0].eligible_tuples]
        assert sorted(eligible, reverse=True) == [9.0, 8.0, 7.0, 6.0, 5.0]

    def test_bottom_restricts_eligibility(self):
        values = [float(v) for v in range(10)]
        sets = replay_candidate_sets(
            lambda: _filter(prescription="bottom"), _trace(values)
        )
        eligible = sorted(t.value("x") for t in sets[0].eligible_tuples)
        assert eligible == [0.0, 1.0, 2.0, 3.0, 4.0]

    def test_random_keeps_all_eligible(self):
        sets = replay_candidate_sets(lambda: _filter(), _trace([0.0] * 10))
        assert len(sets[0].eligible_tuples) == 10


class TestSelfInterestedSampler:
    def test_sample_counts(self):
        flt = _filter(threshold=5.0, high=50, low=20)
        sampler = flt.make_self_interested()
        outputs = []
        for item in _trace([0.0] * 30):
            outputs.extend(sampler.process(item))
        outputs.extend(sampler.flush())
        assert len(outputs) == 6  # three quiet segments x 2 samples

    def test_deterministic_given_seed(self):
        def collect():
            sampler = _filter().make_self_interested()
            outputs = []
            for item in _trace([float(i % 7) for i in range(40)]):
                outputs.extend(sampler.process(item))
            outputs.extend(sampler.flush())
            return [t.seq for t in outputs]

        assert collect() == collect()

    def test_outputs_sorted_within_segment(self):
        sampler = _filter(high=50, low=50).make_self_interested()
        outputs = []
        for item in _trace([0.0] * 20):
            outputs.extend(sampler.process(item))
        outputs.extend(sampler.flush())
        assert [t.seq for t in outputs] == sorted(t.seq for t in outputs)


class TestGroupAwareSampling:
    def _group(self):
        return [
            StratifiedSamplingFilter("s1", "x", 100, 5.0, 50, 20),
            StratifiedSamplingFilter("s2", "x", 100, 9.0, 50, 20, seed=1),
            StratifiedSamplingFilter("s3", "x", 100, 2.0, 60, 30, seed=2),
        ]

    def test_degrees_satisfied(self):
        values = [float(i % 11) for i in range(60)]
        trace = _trace(values)
        result = GroupAwareEngine(self._group(), algorithm="region").run(trace)
        for name in ("s1", "s2", "s3"):
            spec = next(f for f in self._group() if f.name == name)
            sets = replay_candidate_sets(
                lambda spec=spec: StratifiedSamplingFilter(
                    spec.name, "x", spec.interval_ms, spec.threshold,
                    spec.high_rate_percent, spec.low_rate_percent,
                ),
                trace,
            )
            report = validate_outputs(sets, result.outputs_for(name))
            assert report.ok, (name, report.unsatisfied_sets, report.foreign_tuples)

    def test_sharing_beats_self_interested(self):
        values = [float(i % 11) for i in range(300)]
        trace = _trace(values)
        ga = GroupAwareEngine(self._group(), algorithm="region").run(trace)
        si = SelfInterestedEngine(self._group()).run(trace)
        assert ga.output_count <= si.output_count

    def test_mixed_group_with_delta_filter(self):
        from repro.filters.delta import DeltaCompressionFilter

        values = [float(i % 13) * 0.5 for i in range(200)]
        trace = _trace(values)
        group = [
            StratifiedSamplingFilter("ss", "x", 100, 3.0, 50, 20),
            DeltaCompressionFilter("dc", "x", 2.0, 1.0),
        ]
        result = GroupAwareEngine(group, algorithm="region").run(trace)
        assert result.output_count > 0
        assert result.outputs_for("ss")
        assert result.outputs_for("dc")
