"""Integration tests for server-initiated degradation.

Broker level: the controller drives the re-filter machinery under
overload and a client re-filter detaches it.  Wire level: ``qos_update``
pushes reach the remote subscription, and a server push racing an
in-flight client ``re_filter`` resolves in the client's favor (the
explicit spec choice wins and the automatic policy detaches).
"""

from __future__ import annotations

import asyncio

import pytest

from repro.core.tuples import StreamTuple
from repro.qos import DegradationPolicy, QualitySpec
from repro.qos.controller import DegradationConfig
from repro.runtime.tasks import EngineConfig
from repro.service import DisseminationService, ServiceConfig
from repro.transport import GatewayClient, GatewayServer

LEVELS = (
    "DC1(temp, 0.5, 0.25)",
    "DC1(temp, 4.0, 2.0)",
    "DC1(temp, 16.0, 8.0)",
)


def _policy(app="app0") -> DegradationPolicy:
    return DegradationPolicy(
        app_name=app,
        levels=tuple(QualitySpec(app, spec) for spec in LEVELS),
    )


def _config(**overrides) -> DegradationConfig:
    """Fast cadence for tests: evaluate every millisecond, no cooldown."""
    base = dict(
        interval_s=0.001,
        cooldown_s=0.0,
        healthy_window_s=0.05,
        flush_wait_ms=None,
        drop_rate_per_s=0.0,
    )
    base.update(overrides)
    return DegradationConfig(**base)


def _service(**overrides) -> DisseminationService:
    service = DisseminationService(
        ServiceConfig(
            engine=EngineConfig(algorithm="region"),
            batch_max_items=1,
            **overrides,
        )
    )
    service.add_source("src")
    return service


def _item(seq: int) -> StreamTuple:
    return StreamTuple(
        seq=seq, timestamp=float(seq), values={"temp": float(seq % 7)}
    )


async def _drive(service, *, count=40, start=0, delay=0.002) -> int:
    """Offer ``count`` tuples with enough spacing that the controller's
    1ms evaluation interval elapses between dispatches."""
    for seq in range(start, start + count):
        await service.offer("src", _item(seq))
        await asyncio.sleep(delay)
    return start + count


class TestBrokerDegradation:
    def test_overload_walks_the_ladder_and_notifies(self):
        """queue_high_ratio=0 makes every evaluation stressed: the broker
        must step the session down one level per evaluation to the
        ladder's bottom, announcing each transition to the listener."""

        async def run():
            service = _service()
            session = await service.subscribe(
                "app0",
                "src",
                LEVELS[0],
                queue_capacity=4,
                overflow="drop_oldest",
                degradation=_policy(),
                degradation_config=_config(queue_high_ratio=0.0),
            )
            updates = []
            session.qos_listener = updates.append
            await _drive(service)
            await service.close()
            return session, updates

        session, updates = asyncio.run(run())
        assert session.degradation is not None
        assert session.degradation.level == 2
        assert [u["action"] for u in updates] == ["degrade", "degrade"]
        assert [u["level"] for u in updates] == [1, 2]
        assert [u["spec"] for u in updates] == [LEVELS[1], LEVELS[2]]
        assert updates[0]["signal"] == "queue_depth"

    def test_recovery_probes_back_to_level_zero(self):
        """Once the stress clears, idle ticks drive the AIMD probes all
        the way back to the preferred level."""

        async def run():
            service = _service()
            session = await service.subscribe(
                "app0",
                "src",
                LEVELS[0],
                queue_capacity=4,
                overflow="drop_oldest",
                degradation=_policy(),
                degradation_config=_config(queue_high_ratio=0.5),
            )
            # Overload: nobody drains, a 4-deep queue fills fast.
            next_seq = await _drive(service)
            degraded_to = session.degradation.level
            # Clear the backlog; ticks alone must carry the recovery.
            session.queue.drain_nowait()
            for _ in range(200):
                await service.tick(float(next_seq))
                session.queue.drain_nowait()
                await asyncio.sleep(0.005)
                if session.degradation.level == 0:
                    break
            recovered_level = session.degradation.level
            trajectory = list(session.degradation.trajectory)
            await service.close()
            return degraded_to, recovered_level, trajectory

        degraded_to, recovered_level, trajectory = asyncio.run(run())
        assert degraded_to > 0
        assert recovered_level == 0
        assert ("recover", 0) == trajectory[-1]

    def test_client_re_filter_detaches_controller(self):
        """An explicit spec choice overrides the automatic policy: after
        re_filter the controller is gone and overload stops mutating the
        session's spec."""

        async def run():
            service = _service()
            session = await service.subscribe(
                "app0",
                "src",
                LEVELS[0],
                queue_capacity=4,
                overflow="drop_oldest",
                degradation=_policy(),
                degradation_config=_config(queue_high_ratio=0.0),
            )
            updates = []
            session.qos_listener = updates.append
            next_seq = await _drive(service, count=20)
            assert session.degradation is not None
            await service.re_filter("app0", "DC1(temp, 9.0, 4.5)")
            seen = len(updates)
            await _drive(service, count=20, start=next_seq)
            await service.close()
            return session, updates, seen

        session, updates, seen = asyncio.run(run())
        assert session.degradation is None
        assert len(updates) == seen  # no pushes after the detach
        assert session.spec == "DC1(temp, 9.0, 4.5)"


class TestWireDegradation:
    def test_qos_update_frames_reach_the_subscription(self):
        async def run():
            service = _service()
            gateway = GatewayServer(service)
            await gateway.start()
            client = await GatewayClient.connect("127.0.0.1", gateway.port)
            sub = await client.subscribe(
                "app0",
                "src",
                LEVELS[0],
                degradation=_policy(),
                degradation_config=_config(queue_high_ratio=0.0),
                queue_capacity=4,
                overflow="drop_oldest",
            )
            seen = []
            sub.on_qos_update = seen.append

            async def consume():
                async for _ in sub.batches():
                    pass

            consumer = asyncio.ensure_future(consume())
            for seq in range(60):
                await client.ingest("src", _item(seq))
                await asyncio.sleep(0.002)
                if len(sub.qos_updates) >= 2:
                    break
            updates = list(sub.qos_updates)
            level, spec = sub.degradation_level, sub.spec
            await client.close()
            await gateway.shutdown()
            consumer.cancel()
            return updates, seen, level, spec

        updates, seen, level, spec = asyncio.run(run())
        assert [u["action"] for u in updates[:2]] == ["degrade", "degrade"]
        assert level == 2
        assert spec == LEVELS[2]
        assert seen == updates  # callback saw every frame, in order

    def test_server_push_racing_client_re_filter_client_wins(self):
        """A qos_update in flight while the client issues re_filter must
        not clobber the client's explicit spec: the server detaches the
        controller under the source lock before acking, so every push
        frame precedes the re_filter reply on the wire, and the client
        applies its own spec last."""

        async def run():
            service = _service()
            gateway = GatewayServer(service)
            await gateway.start()
            client = await GatewayClient.connect("127.0.0.1", gateway.port)
            sub = await client.subscribe(
                "app0",
                "src",
                LEVELS[0],
                degradation=_policy(),
                degradation_config=_config(queue_high_ratio=0.0),
                queue_capacity=4,
                overflow="drop_oldest",
            )

            async def consume():
                async for _ in sub.batches():
                    pass

            consumer = asyncio.ensure_future(consume())

            stop = asyncio.Event()

            async def pound():
                seq = 0
                while not stop.is_set():
                    await client.ingest("src", _item(seq), ack=False)
                    seq += 1
                    await asyncio.sleep(0.001)
                return seq

            pounder = asyncio.ensure_future(pound())
            # Wait until the server has actually pushed at least one
            # degradation step, so the race is live.
            for _ in range(500):
                if sub.qos_updates:
                    break
                await asyncio.sleep(0.002)
            assert sub.qos_updates, "server never degraded the session"
            await client.re_filter("app0", "DC1(temp, 9.0, 4.5)")
            spec_after_ack = sub.spec
            pushes_at_ack = len(sub.qos_updates)
            # Keep the overload running: no further pushes may arrive.
            await asyncio.sleep(0.1)
            stop.set()
            await pounder
            session = service._src("src").sessions["app0"]
            result = (
                spec_after_ack,
                sub.spec,
                len(sub.qos_updates) - pushes_at_ack,
                session.degradation,
            )
            await client.close()
            await gateway.shutdown()
            consumer.cancel()
            return result

        spec_after_ack, spec_final, late_pushes, controller = asyncio.run(run())
        assert spec_after_ack == "DC1(temp, 9.0, 4.5)"
        assert spec_final == "DC1(temp, 9.0, 4.5)"
        assert late_pushes == 0
        assert controller is None
