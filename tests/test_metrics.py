"""Unit tests for the evaluation metrics."""

import pytest

from repro.core.engine import GroupAwareEngine, SelfInterestedEngine
from repro.metrics import (
    BoxPlot,
    batch_output_ratios,
    cpu_ms_per_batch,
    cpu_overhead_ratio,
    mean,
    mean_cpu_ms_per_batch,
    mean_latency_ms,
    median,
    oi_ratio,
    output_ratio,
    quantile,
    render_series,
    render_table,
)
from tests.conftest import paper_group


class TestSummary:
    def test_mean_median(self):
        assert mean([1.0, 2.0, 6.0]) == 3.0
        assert median([1.0, 2.0, 6.0]) == 2.0
        assert median([1.0, 2.0]) == 1.5

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            mean([])
        with pytest.raises(ValueError):
            quantile([], 0.5)

    def test_quantile_bounds(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert quantile(values, 0.0) == 1.0
        assert quantile(values, 1.0) == 4.0
        with pytest.raises(ValueError):
            quantile(values, 1.5)

    def test_quantile_interpolates(self):
        assert quantile([0.0, 10.0], 0.25) == 2.5

    def test_boxplot_five_numbers(self):
        box = BoxPlot.of([1.0, 2.0, 3.0, 4.0, 5.0])
        assert box.minimum == 1.0
        assert box.median == 3.0
        assert box.maximum == 5.0
        assert box.n == 5
        assert box.outliers == ()

    def test_boxplot_outlier_detection(self):
        """Section 4.4's 1.5*IQR rule."""
        values = [10.0, 11.0, 12.0, 13.0, 14.0, 100.0]
        box = BoxPlot.of(values)
        assert 100.0 in box.outliers
        assert box.maximum < 100.0  # whisker excludes the outlier

    def test_boxplot_single_value(self):
        box = BoxPlot.of([7.0])
        assert box.minimum == box.maximum == box.median == 7.0

    def test_boxplot_row(self):
        row = BoxPlot.of([1.0, 2.0, 3.0]).row()
        assert set(row) == {"min", "q1", "median", "q3", "max", "mean", "outliers"}


class TestRatios:
    def test_oi_and_output_ratio(self, paper_trace):
        ga = GroupAwareEngine(paper_group()).run(paper_trace)
        si = SelfInterestedEngine(paper_group()).run(paper_trace)
        assert oi_ratio(ga) == pytest.approx(0.3)
        assert oi_ratio(si) == pytest.approx(0.6)
        assert output_ratio(ga, si) == pytest.approx(0.5)

    def test_output_ratio_zero_baseline(self):
        from repro.core.engine import EngineResult

        with pytest.raises(ValueError):
            output_ratio(EngineResult(), EngineResult())

    def test_batch_output_ratios(self, paper_trace):
        ga = GroupAwareEngine(paper_group()).run(paper_trace)
        si = SelfInterestedEngine(paper_group()).run(paper_trace)
        ratios = batch_output_ratios(ga, si, batch_size=5)
        assert len(ratios.ratios) == 2
        assert 0 < ratios.average <= 1.0
        assert ratios.batch_size == 5

    def test_batch_size_validated(self, paper_trace):
        ga = GroupAwareEngine(paper_group()).run(paper_trace)
        with pytest.raises(ValueError):
            batch_output_ratios(ga, ga, batch_size=0)


class TestCpuMetrics:
    def test_batches_cover_all_samples(self, paper_trace):
        result = GroupAwareEngine(paper_group()).run(paper_trace)
        batches = cpu_ms_per_batch(result, batch_size=4)
        assert len(batches) == 3  # 10 tuples in batches of 4
        assert sum(batches) == pytest.approx(result.total_cpu_ms)

    def test_mean_cpu_per_batch(self, paper_trace):
        result = GroupAwareEngine(paper_group()).run(paper_trace)
        assert mean_cpu_ms_per_batch(result, batch_size=5) > 0

    def test_overhead_ratio(self, paper_trace):
        ga = GroupAwareEngine(paper_group()).run(paper_trace)
        si = SelfInterestedEngine(paper_group()).run(paper_trace)
        assert cpu_overhead_ratio(ga, si) > 0

    def test_batch_size_validated(self, paper_trace):
        result = GroupAwareEngine(paper_group()).run(paper_trace)
        with pytest.raises(ValueError):
            cpu_ms_per_batch(result, 0)


class TestLatencyMetrics:
    def test_software_overhead_added(self, paper_trace):
        si = SelfInterestedEngine(paper_group()).run(paper_trace)
        assert mean_latency_ms(si) == pytest.approx(12.0)

    def test_multicast_added(self, paper_trace):
        si = SelfInterestedEngine(paper_group()).run(paper_trace)
        assert mean_latency_ms(si, multicast_ms=130.0) == pytest.approx(142.0)

    def test_empty(self):
        from repro.core.engine import EngineResult

        assert mean_latency_ms(EngineResult()) == 0.0


class TestReport:
    def test_render_table(self):
        text = render_table("Title", ["a", "b"], [[1, 2.5], ["x", 0.000123]])
        assert "== Title ==" in text
        assert "x" in text
        assert "1.230e-04" in text

    def test_row_width_mismatch(self):
        with pytest.raises(ValueError):
            render_table("t", ["a"], [[1, 2]])

    def test_render_series(self):
        text = render_series("s", [(1, 2.0), (2, 3.0)], "x", "y")
        assert "x" in text and "y" in text


class TestLatencyPercentiles:
    def test_window_percentiles(self):
        from repro.metrics.latency import latency_percentiles

        window = [float(v) for v in range(1, 101)]
        result = latency_percentiles(window, (50, 99))
        assert result["p50"] == 50.5
        assert result["p99"] == pytest.approx(99.01)

    def test_empty_window_is_zero(self):
        from repro.metrics.latency import latency_percentiles

        assert latency_percentiles([]) == {"p50": 0.0, "p99": 0.0}

    def test_percentile_validated(self):
        from repro.metrics.latency import latency_percentiles

        with pytest.raises(ValueError):
            latency_percentiles([1.0], (101,))
