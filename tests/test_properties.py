"""Property-based tests (hypothesis) for the core invariants."""

import math

from hypothesis import given, settings, strategies as st

from repro.core.candidates import CandidateSet
from repro.core.engine import GroupAwareEngine, SelfInterestedEngine
from repro.core.hitting_set import (
    exact_minimum_hitting_set,
    greedy_hitting_set,
    harmonic,
)
from repro.core.regions import RegionTracker
from repro.core.state import GroupUtility
from repro.core.tuples import Trace
from repro.filters.delta import DeltaCompressionFilter
from repro.filters.validate import replay_candidate_sets, validate_outputs
from tests.conftest import make_tuples

# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------
walk_steps = st.lists(
    st.floats(min_value=-3.0, max_value=3.0, allow_nan=False),
    min_size=10,
    max_size=120,
)

filter_params = st.lists(
    st.tuples(
        st.floats(min_value=0.5, max_value=8.0),  # delta
        st.floats(min_value=0.0, max_value=0.5),  # slack as fraction of delta
    ),
    min_size=1,
    max_size=4,
)


def _trace_from_steps(steps):
    values = [0.0]
    for step in steps:
        values.append(values[-1] + step)
    return Trace.from_values(values, attribute="v", interval_ms=10)


def _group(params):
    return [
        DeltaCompressionFilter(f"f{i}", "v", delta, delta * fraction)
        for i, (delta, fraction) in enumerate(params)
    ]


# ---------------------------------------------------------------------------
# Hitting-set properties
# ---------------------------------------------------------------------------
@st.composite
def hitting_instances(draw):
    universe = make_tuples([float(i) for i in range(draw(st.integers(4, 10)))])
    n_sets = draw(st.integers(1, 5))
    sets = []
    for i in range(n_sets):
        members = draw(
            st.lists(st.sampled_from(universe), min_size=1, max_size=6, unique=True)
        )
        cs = CandidateSet(f"s{i}")
        for item in members:
            cs.add(item)
        cs.close()
        sets.append(cs)
    return sets


@given(hitting_instances())
@settings(max_examples=60, deadline=None)
def test_greedy_hits_every_set(sets):
    selection = greedy_hitting_set(sets)
    chosen = {t.seq for t in selection.chosen}
    for cs in sets:
        assert chosen & {t.seq for t in cs.tuples}


@given(hitting_instances())
@settings(max_examples=40, deadline=None)
def test_greedy_within_harmonic_bound_of_optimal(sets):
    greedy = greedy_hitting_set(sets)
    exact = exact_minimum_hitting_set(sets)
    largest = max(len(cs) for cs in sets)
    assert greedy.output_size <= math.ceil(harmonic(largest) * exact.output_size)


@given(hitting_instances())
@settings(max_examples=40, deadline=None)
def test_greedy_never_exceeds_set_count(sets):
    assert greedy_hitting_set(sets).output_size <= len(sets)


@given(
    hitting_instances(),
    st.integers(min_value=1, max_value=4),
)
@settings(max_examples=40, deadline=None)
def test_multi_degree_satisfaction(sets, degree):
    for cs in sets:
        cs.degree = degree
    selection = greedy_hitting_set(sets)
    for cs in sets:
        required = min(degree, len(cs))
        chosen = {t.seq for t in selection.assignments[cs.set_id]}
        assert len(chosen & {t.seq for t in cs.tuples}) >= required


# ---------------------------------------------------------------------------
# Delta-compression filter properties
# ---------------------------------------------------------------------------
@given(walk_steps, filter_params)
@settings(max_examples=40, deadline=None)
def test_candidate_tuples_within_slack_of_reference(steps, params):
    trace = _trace_from_steps(steps)
    for flt in _group(params):
        sets = replay_candidate_sets(
            lambda flt=flt: DeltaCompressionFilter(flt.name, "v", flt.delta, flt.slack),
            trace,
        )
        for cs in sets:
            assert cs.reference is not None
            reference_value = cs.reference.value("v")
            for item in cs.tuples:
                assert abs(item.value("v") - reference_value) <= flt.slack + 1e-9


@given(walk_steps, filter_params)
@settings(max_examples=40, deadline=None)
def test_axiom_1_per_filter_time_covers_disjoint(steps, params):
    trace = _trace_from_steps(steps)
    for flt in _group(params):
        sets = replay_candidate_sets(
            lambda flt=flt: DeltaCompressionFilter(flt.name, "v", flt.delta, flt.slack),
            trace,
        )
        for first, second in zip(sets, sets[1:]):
            assert first.time_cover.max_ts < second.time_cover.min_ts


@given(walk_steps, filter_params)
@settings(max_examples=40, deadline=None)
def test_candidate_sets_match_si_reference_count(steps, params):
    """Stateless candidate sets correspond 1:1 with SI references."""
    trace = _trace_from_steps(steps)
    for flt in _group(params):
        sets = replay_candidate_sets(
            lambda flt=flt: DeltaCompressionFilter(flt.name, "v", flt.delta, flt.slack),
            trace,
        )
        si = DeltaCompressionFilter(flt.name, "v", flt.delta, flt.slack)
        baseline = si.make_self_interested()
        references = []
        for item in trace:
            references.extend(baseline.process(item))
        assert len(sets) == len(references)


# ---------------------------------------------------------------------------
# Engine properties
# ---------------------------------------------------------------------------
@given(walk_steps, filter_params, st.sampled_from(["region", "per_candidate_set"]))
@settings(max_examples=30, deadline=None)
def test_group_aware_never_worse_than_self_interested(steps, params, algorithm):
    trace = _trace_from_steps(steps)
    ga = GroupAwareEngine(_group(params), algorithm=algorithm).run(trace)
    si = SelfInterestedEngine(_group(params)).run(trace)
    assert ga.output_count <= si.output_count


@given(walk_steps, filter_params, st.sampled_from(["region", "per_candidate_set"]))
@settings(max_examples=30, deadline=None)
def test_quality_guarantee_every_candidate_set_hit(steps, params, algorithm):
    trace = _trace_from_steps(steps)
    result = GroupAwareEngine(_group(params), algorithm=algorithm).run(trace)
    for flt in _group(params):
        sets = replay_candidate_sets(
            lambda flt=flt: DeltaCompressionFilter(flt.name, "v", flt.delta, flt.slack),
            trace,
        )
        report = validate_outputs(sets, result.outputs_for(flt.name))
        assert report.ok


@given(walk_steps, filter_params)
@settings(max_examples=30, deadline=None)
def test_online_regions_match_offline_partition(steps, params):
    """The tracker's online regions must partition the same candidate
    sets as the offline Definition 2-4 computation."""
    trace = _trace_from_steps(steps)
    engine = GroupAwareEngine(_group(params), algorithm="region")
    regions = []
    original_poll = engine._tracker.poll

    def spy(now, final=False, cut=False):
        closed = original_poll(now, final=final, cut=cut)
        regions.extend(closed)
        return closed

    engine._tracker.poll = spy
    engine.run(trace)
    all_sets = [cs for region in regions for cs in region.sets]
    offline = RegionTracker.partition(all_sets)
    online_partition = sorted(
        sorted(cs.set_id for cs in region.sets) for region in regions
    )
    offline_partition = sorted(
        sorted(cs.set_id for cs in component) for component in offline
    )
    assert online_partition == offline_partition


# ---------------------------------------------------------------------------
# Group utility properties
# ---------------------------------------------------------------------------
@given(
    st.lists(
        st.tuples(st.integers(0, 5), st.booleans()), min_size=0, max_size=60
    )
)
@settings(max_examples=60, deadline=None)
def test_group_utility_counts_never_negative(operations):
    items = make_tuples([float(i) for i in range(6)])
    utility = GroupUtility()
    shadow = {i: 0 for i in range(6)}
    for index, is_increment in operations:
        if is_increment:
            utility.increment(items[index])
            shadow[index] += 1
        elif shadow[index] > 0:
            utility.decrement(items[index])
            shadow[index] -= 1
    for index, count in shadow.items():
        assert utility.get(items[index]) == count
