"""Unit tests for the filter function library."""

import pytest

from repro.core.tuples import StreamTuple
from repro.filters.functions import (
    AGGREGATE_FUNCTIONS,
    DISTANCE_FUNCTIONS,
    MEMBERSHIP_FUNCTIONS,
    FunctionRegistry,
    above_threshold,
    absolute_distance,
    band_membership,
    euclidean_distance,
    manhattan_distance,
    mean_of,
    range_of,
    rate_of_change,
)


class TestDistances:
    def test_absolute(self):
        assert absolute_distance(3.0, -2.0) == 5.0

    def test_euclidean(self):
        assert euclidean_distance([0, 0], [3, 4]) == 5.0

    def test_euclidean_length_mismatch(self):
        with pytest.raises(ValueError):
            euclidean_distance([0], [1, 2])

    def test_manhattan(self):
        assert manhattan_distance([0, 0], [3, 4]) == 7.0

    def test_manhattan_length_mismatch(self):
        with pytest.raises(ValueError):
            manhattan_distance([0, 1, 2], [1, 2])


class TestAggregates:
    def test_mean_of(self):
        derive = mean_of(["a", "b"])
        item = StreamTuple(seq=0, timestamp=0.0, values={"a": 2.0, "b": 4.0})
        assert derive(item) == 3.0

    def test_mean_of_empty(self):
        with pytest.raises(ValueError):
            mean_of([])

    def test_range_of(self):
        assert range_of([3.0, 9.0, 1.0]) == 8.0

    def test_range_of_empty(self):
        with pytest.raises(ValueError):
            range_of([])

    def test_rate_of_change(self):
        assert rate_of_change(10.0, 5.0, dt_ms=500.0) == 10.0  # +5 in 0.5s

    def test_rate_of_change_bad_dt(self):
        with pytest.raises(ValueError):
            rate_of_change(1.0, 0.0, dt_ms=0.0)


class TestMemberships:
    def test_band(self):
        member = band_membership(1.0, 2.0)
        assert member(1.0) and member(1.5) and member(2.0)
        assert not member(0.9) and not member(2.1)

    def test_band_validates(self):
        with pytest.raises(ValueError):
            band_membership(2.0, 1.0)

    def test_above(self):
        member = above_threshold(5.0)
        assert member(5.0) and member(6.0)
        assert not member(4.9)


class TestRegistry:
    def test_register_and_get(self):
        registry = FunctionRegistry()
        registry.register("f", abs)
        assert registry.get("f") is abs
        assert "f" in registry

    def test_duplicate_rejected(self):
        registry = FunctionRegistry({"f": abs})
        with pytest.raises(ValueError):
            registry.register("f", abs)

    def test_unknown_raises_with_listing(self):
        registry = FunctionRegistry({"f": abs})
        with pytest.raises(KeyError, match="registered"):
            registry.get("g")

    def test_builtin_registries_populated(self):
        assert "absolute" in DISTANCE_FUNCTIONS
        assert "euclidean" in DISTANCE_FUNCTIONS
        assert "range" in AGGREGATE_FUNCTIONS
        assert "band" in MEMBERSHIP_FUNCTIONS
        assert DISTANCE_FUNCTIONS.names() == sorted(DISTANCE_FUNCTIONS.names())
