"""Unit tests for group utility and decided-output state."""

import pytest

from repro.core.state import DecidedOutputs, GroupUtility
from tests.conftest import make_tuples


class TestGroupUtility:
    def test_increment_and_get(self):
        items = make_tuples([1.0, 2.0])
        utility = GroupUtility()
        utility.increment(items[0])
        utility.increment(items[0])
        utility.increment(items[1])
        assert utility.get(items[0]) == 2
        assert utility.get(items[1]) == 1

    def test_get_unknown_is_zero(self):
        utility = GroupUtility()
        assert utility.get(make_tuples([1.0])[0]) == 0

    def test_decrement_removes_at_zero(self):
        item = make_tuples([1.0])[0]
        utility = GroupUtility()
        utility.increment(item)
        utility.decrement(item)
        assert utility.get(item) == 0
        assert len(utility) == 0

    def test_decrement_unknown_raises(self):
        utility = GroupUtility()
        with pytest.raises(KeyError):
            utility.decrement(make_tuples([1.0])[0])

    def test_best_by_utility(self):
        items = make_tuples([1.0, 2.0, 3.0])
        utility = GroupUtility()
        for item in items:
            utility.increment(item)
        utility.increment(items[1])
        assert utility.best(items) == items[1]

    def test_best_tie_breaks_by_freshness(self):
        """Ties are broken by the latest timestamp (section 2.3.3)."""
        items = make_tuples([1.0, 2.0, 3.0])
        utility = GroupUtility()
        for item in items:
            utility.increment(item)
        assert utility.best(items) == items[2]

    def test_best_of_empty_is_none(self):
        assert GroupUtility().best([]) is None

    def test_best_with_zero_utilities(self):
        items = make_tuples([1.0, 2.0])
        assert GroupUtility().best(items) == items[1]

    def test_forget(self):
        items = make_tuples([1.0, 2.0])
        utility = GroupUtility()
        for item in items:
            utility.increment(item)
        utility.forget([items[0].seq, 999])
        assert utility.get(items[0]) == 0
        assert utility.get(items[1]) == 1

    def test_snapshot_is_copy(self):
        item = make_tuples([1.0])[0]
        utility = GroupUtility()
        utility.increment(item)
        snap = utility.snapshot()
        snap[item.seq] = 99
        assert utility.get(item) == 1


class TestDecidedOutputs:
    def test_record_and_choosers(self):
        item = make_tuples([1.0])[0]
        decided = DecidedOutputs()
        decided.record(item, "A")
        decided.record(item, "B")
        assert decided.choosers(item) == frozenset({"A", "B"})
        assert item in decided

    def test_chosen_by_others_excludes_self_only(self):
        items = make_tuples([1.0, 2.0, 3.0])
        decided = DecidedOutputs()
        decided.record(items[0], "A")  # only A chose it
        decided.record(items[1], "B")
        assert decided.chosen_by_others(items, "A") == [items[1]]
        assert decided.chosen_by_others(items, "C") == [items[0], items[1]]

    def test_chosen_by_both_self_and_other_counts(self):
        items = make_tuples([1.0])
        decided = DecidedOutputs()
        decided.record(items[0], "A")
        decided.record(items[0], "B")
        assert decided.chosen_by_others(items, "A") == [items[0]]

    def test_forget(self):
        items = make_tuples([1.0, 2.0])
        decided = DecidedOutputs()
        decided.record(items[0], "A")
        decided.record(items[1], "A")
        decided.forget([items[0].seq])
        assert items[0] not in decided
        assert items[1] in decided
        assert len(decided) == 1
