"""Unit tests for work-flow graphs and deployment planning."""

import pytest

from repro.qos import QualitySpec, propagate
from repro.workflow import NodeKind, WorkflowGraph, plan_deployment


def _spec(app, delta=2.0, latency=None):
    return QualitySpec(
        app_name=app,
        filter_spec=f"DC1(temp, {delta}, {delta / 2})",
        latency_tolerance_ms=latency,
    )


class TestGraphConstruction:
    def test_node_kinds(self):
        graph = WorkflowGraph()
        graph.add_source("s")
        graph.add_operator("o")
        graph.add_application("a")
        assert graph.kind("s") is NodeKind.SOURCE
        assert graph.sources() == ["s"]
        assert graph.operators() == ["o"]
        assert graph.applications() == ["a"]

    def test_duplicate_rejected(self):
        graph = WorkflowGraph()
        graph.add_source("x")
        with pytest.raises(ValueError, match="already exists"):
            graph.add_operator("x")

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            WorkflowGraph().add_source("")

    def test_application_cannot_feed(self):
        graph = WorkflowGraph()
        graph.add_application("a")
        graph.add_operator("o")
        with pytest.raises(ValueError, match="sinks"):
            graph.connect("a", "o")

    def test_source_cannot_consume(self):
        graph = WorkflowGraph()
        graph.add_source("s")
        graph.add_operator("o")
        with pytest.raises(ValueError, match="roots"):
            graph.connect("o", "s")

    def test_cycle_rejected(self):
        graph = WorkflowGraph()
        graph.add_operator("o1")
        graph.add_operator("o2")
        graph.connect("o1", "o2")
        with pytest.raises(ValueError, match="cycle"):
            graph.connect("o2", "o1")

    def test_self_loop_rejected(self):
        graph = WorkflowGraph()
        graph.add_operator("o")
        with pytest.raises(ValueError, match="self-loop"):
            graph.connect("o", "o")

    def test_unknown_nodes_rejected(self):
        graph = WorkflowGraph()
        graph.add_source("s")
        with pytest.raises(KeyError):
            graph.connect("s", "ghost")


class TestGraphQueries:
    def _graph(self):
        graph = WorkflowGraph()
        graph.add_source("s")
        graph.add_operator("o")
        graph.add_application("a1")
        graph.add_application("a2")
        graph.connect("s", "o")
        graph.connect("o", "a1")
        graph.connect("o", "a2")
        return graph

    def test_downstream_upstream(self):
        graph = self._graph()
        assert graph.downstream("o") == ["a1", "a2"]
        assert graph.upstream("o") == ["s"]
        assert graph.fan_out("o") == 2

    def test_topological_order(self):
        graph = self._graph()
        order = graph.topological_order()
        assert order.index("s") < order.index("o") < order.index("a1")

    def test_validate_passes(self):
        self._graph().validate()

    def test_validate_detects_unfed_application(self):
        graph = WorkflowGraph()
        graph.add_application("orphan")
        with pytest.raises(ValueError, match="not fed"):
            graph.validate()

    def test_validate_detects_dangling_operator(self):
        graph = WorkflowGraph()
        graph.add_source("s")
        graph.add_operator("dead-end")
        graph.connect("s", "dead-end")
        with pytest.raises(ValueError, match="feeds nobody"):
            graph.validate()


class TestDeploymentPlanning:
    def _planned(self):
        graph = WorkflowGraph()
        graph.add_source("src")
        graph.add_operator("shared-op")
        graph.add_application("app1")
        graph.add_application("app2")
        graph.add_application("solo")
        graph.connect("src", "shared-op")
        graph.connect("shared-op", "app1")
        graph.connect("shared-op", "app2")
        graph.connect("src", "solo")
        specs = {
            "app1": _spec("app1", latency=100),
            "app2": _spec("app2", latency=250),
            "solo": _spec("solo"),
        }
        propagated = propagate(graph, specs)
        return plan_deployment(graph, propagated)

    def test_one_plan_per_serving_node(self):
        plans = {plan.node: plan for plan in self._planned()}
        assert set(plans) == {"src", "shared-op"}

    def test_group_awareness_requires_two_subscribers(self):
        plans = {plan.node: plan for plan in self._planned()}
        assert plans["shared-op"].group_aware
        assert plans["src"].group_aware  # serves all three downstream

    def test_group_constraint_is_conjunction(self):
        plans = {plan.node: plan for plan in self._planned()}
        assert plans["shared-op"].time_constraint.max_delay_ms == 100

    def test_filters_built_per_spec(self):
        plans = {plan.node: plan for plan in self._planned()}
        filters = plans["shared-op"].build_filters()
        assert sorted(f.name for f in filters) == ["app1", "app2"]

    def test_min_group_size_validated(self):
        graph = WorkflowGraph()
        graph.add_source("s")
        graph.add_application("a")
        graph.connect("s", "a")
        propagated = propagate(graph, {"a": _spec("a")})
        with pytest.raises(ValueError):
            plan_deployment(graph, propagated, min_group_size=1)

    def test_single_subscriber_not_group_aware(self):
        graph = WorkflowGraph()
        graph.add_source("s")
        graph.add_application("a")
        graph.connect("s", "a")
        propagated = propagate(graph, {"a": _spec("a")})
        plans = plan_deployment(graph, propagated)
        assert len(plans) == 1
        assert not plans[0].group_aware
