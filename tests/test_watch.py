"""Watchtower tests: parser round-trips, detectors, rules, endpoints.

Layers, in dependency order:

* exposition parsing round-trips everything the registry renders —
  every family kind, escaped label values, merged multi-worker text
  with the router's duplicate-label relabel quirk;
* each streaming detector on synthetic series (flat → quiet,
  step/spike → fires, recovery → clears);
* declarative rules and SLO burn windows grading signal dicts;
* a live in-process Watchtower: healthy → ok, induced overflow storm →
  critical with the evidence series named, edge-triggered verdict
  events, scrape failure handling;
* the ``/health/report`` HTTP surface and the cluster router's scrape
  cache / events-fold throttle;
* loadgen integration (``health`` block, ``health.json``, stage-latency
  reconciliation) and a real 2-worker cluster where a SIGKILLed worker
  must drive a critical verdict within the poll interval.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.obs import Telemetry
from repro.obs.detect import (
    BucketDelta,
    EventWindow,
    MadDetector,
    P99Baseline,
    RateTracker,
)
from repro.obs.metrics import (
    MetricsRegistry,
    merge_expositions,
    relabel_exposition,
)
from repro.obs.parse import parse_exposition, quantile_from_buckets
from repro.obs.slo import (
    HealthReport,
    Rule,
    SloWindow,
    Verdict,
    default_rules,
    worst,
)
from repro.obs.watch import HttpProbe, LocalProbe, Watchtower, format_report
from repro.service import DisseminationService
from repro.transport import SnapshotHTTP

_SRC = str(Path(__file__).resolve().parent.parent / "src")


def _env() -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (_SRC, env.get("PYTHONPATH")) if p
    )
    return env


async def _http_get(port: int, path: str) -> tuple[str, bytes]:
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    writer.write(
        f"GET {path} HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n".encode()
    )
    await writer.drain()
    raw = await reader.read()
    writer.close()
    await writer.wait_closed()
    head, _, body = raw.partition(b"\r\n\r\n")
    return head.split(b"\r\n", 1)[0].decode(), body


class _FakeClock:
    """Deterministic clock the tests advance by hand."""

    def __init__(self, start: float = 1000.0):
        self.now = start

    def __call__(self) -> float:
        return self.now


# ---------------------------------------------------------------------------
# Exposition parser
# ---------------------------------------------------------------------------
class TestExpositionParser:
    def test_round_trips_every_family_kind(self):
        registry = MetricsRegistry()
        registry.counter("jobs_total", "Jobs processed.").inc(3.5)
        frames = registry.counter("frames_total", "Frames.", ("dir",))
        frames.labels("in").inc(7)
        frames.labels("out").inc(2)
        registry.gauge("depth", "Queue depth.").set(4)
        hist = registry.histogram(
            "lat_ms", "Latency.", buckets=(1.0, 10.0, 100.0)
        )
        hist.labels().observe(0.5)
        hist.labels().observe(5.0)
        hist.labels().observe(500.0)

        expo = parse_exposition(registry.render())
        assert expo.family("jobs_total").kind == "counter"
        assert expo.family("jobs_total").help == "Jobs processed."
        assert expo.value("jobs_total") == 3.5
        assert expo.value("frames_total", dir="in") == 7.0
        assert expo.total("frames_total") == 9.0
        assert expo.family("depth").kind == "gauge"
        assert expo.value("depth") == 4.0
        # Histogram children live under the declared base family.
        assert expo.family("lat_ms").kind == "histogram"
        assert expo.family("lat_ms_bucket") is None
        assert expo.histogram_count("lat_ms") == 3.0
        assert expo.histogram_sum("lat_ms") == pytest.approx(505.5)
        buckets = expo.histogram_buckets("lat_ms")
        assert buckets[1.0] == 1.0
        assert buckets[float("inf")] == 3.0
        # The +Inf sample lands in the overflow bucket; the quantile
        # answers with the largest finite bound.
        assert expo.histogram_quantile("lat_ms", 0.99) == 100.0

    def test_escaped_label_values_round_trip(self):
        registry = MetricsRegistry()
        counter = registry.counter("oddities_total", "Odd.", ("name",))
        nasty = 'a"b\\c\nd,e}f{g'
        counter.labels(nasty).inc(2)
        expo = parse_exposition(registry.render())
        (sample,) = expo.samples("oddities_total")
        assert sample.label("name") == nasty
        assert sample.value == 2.0
        assert sample.matches({"name": nasty})

    def test_merged_multi_worker_exposition(self):
        def worker_render(offered: float, p: float) -> str:
            tele = Telemetry()
            tele.registry.counter(
                "repro_broker_offered_tuples_total", "Tuples."
            ).inc(offered)
            tele.observe_stage("decide", int(p * 1e6))
            return tele.registry.render()

        merged = merge_expositions(
            [
                relabel_exposition(worker_render(10, 5.0), {"worker": "0"}),
                relabel_exposition(worker_render(30, 15.0), {"worker": "1"}),
            ]
        )
        expo = parse_exposition(merged)
        assert expo.total("repro_broker_offered_tuples_total") == 40.0
        assert expo.value(
            "repro_broker_offered_tuples_total", worker="1"
        ) == 30.0
        assert sorted(
            expo.label_values("repro_broker_offered_tuples_total", "worker")
        ) == ["0", "1"]
        # Cross-worker histogram merge: cumulative bucket sums stay
        # cumulative, and the count reflects both workers.
        assert expo.histogram_count(
            "repro_stage_latency_ms", stage="decide"
        ) == 2.0
        # Ambiguous single-value reads must refuse, not guess.
        with pytest.raises(ValueError):
            expo.value("repro_broker_offered_tuples_total")

    def test_duplicate_label_resolves_last_wins(self):
        # The router relabel prepends worker="router" in front of an
        # existing worker="0" on its own cluster families; the slot
        # index (last) must win.
        text = 'alive{worker="router",worker="0"} 1\n'
        expo = parse_exposition(text)
        (sample,) = expo.samples("alive")
        assert sample.label("worker") == "0"
        assert sample.matches({"worker": "0"})
        assert not sample.matches({"worker": "router"})

    def test_unparseable_sample_line_raises(self):
        with pytest.raises(ValueError):
            parse_exposition("jobs_total\n")
        with pytest.raises(ValueError):
            parse_exposition('jobs_total{dir="in} 1\n')

    def test_quantile_edge_cases(self):
        assert quantile_from_buckets({}, 0.5) is None
        assert quantile_from_buckets({1.0: 0.0, float("inf"): 0.0}, 0.5) is None
        # All mass in +Inf: answer with the largest finite bound.
        assert (
            quantile_from_buckets({1.0: 0.0, float("inf"): 5.0}, 0.5) == 1.0
        )
        # Linear interpolation inside the winning bucket.
        assert quantile_from_buckets(
            {10.0: 100.0, float("inf"): 100.0}, 0.5
        ) == pytest.approx(5.0)


# ---------------------------------------------------------------------------
# Streaming detectors
# ---------------------------------------------------------------------------
class TestDetectors:
    def test_rate_tracker_rates_and_reset(self):
        tracker = RateTracker()
        assert tracker.rate("k", 100.0, 10.0) is None  # no baseline yet
        assert tracker.rate("k", 150.0, 20.0) == pytest.approx(5.0)
        # Counter reset (worker respawn): the new absolute value is the
        # delta, never a negative rate.
        rate, delta = tracker.rate_and_delta("k", 30.0, 30.0)
        assert delta == 30.0
        assert rate == pytest.approx(3.0)

    def test_mad_detector_flat_step_recovery(self):
        detector = MadDetector(window=16, min_samples=4, min_scale=1.0)
        scores = [detector.update(10.0 + (i % 2) * 0.5) for i in range(12)]
        assert all(s < 2.0 for s in scores)  # flat-ish history stays quiet
        spike = detector.update(100.0)
        assert spike > 20.0  # step fires on arrival
        # Recovery: the new level refills the window and scores decay.
        settled = [detector.update(100.0) for _ in range(16)]
        assert settled[-1] < 2.0

    def test_p99_baseline_warmup_and_regression(self):
        baseline = P99Baseline(warmup=3, min_baseline=1.0)
        assert baseline.update(10.0) is None
        assert baseline.update(12.0) is None
        assert baseline.update(11.0) is None  # warmup complete: median 11
        assert baseline.baseline == 11.0
        assert baseline.update(33.0) == pytest.approx(3.0)
        assert baseline.update(11.0) == pytest.approx(1.0)  # clears

    def test_p99_baseline_floor_prevents_microsecond_blowups(self):
        baseline = P99Baseline(warmup=1, min_baseline=5.0)
        assert baseline.update(0.001) is None
        assert baseline.update(10.0) == pytest.approx(2.0)  # /5.0, not /0.001

    def test_event_window_slides(self):
        window = EventWindow(window_s=10.0)
        window.add(100.0)
        window.add(105.0)
        assert window.count(106.0) == 2
        assert window.count(112.0) == 1  # the 100.0 event aged out
        assert window.count(200.0) == 0

    def test_bucket_delta_intervals_and_reset(self):
        tracker = BucketDelta()
        first = tracker.delta("k", {1.0: 5.0, float("inf"): 10.0})
        assert first == {1.0: 5.0, float("inf"): 10.0}
        second = tracker.delta("k", {1.0: 7.0, float("inf"): 20.0})
        assert second == {1.0: 2.0, float("inf"): 10.0}
        # Shrinking counts = restarted worker: report the new snapshot.
        reset = tracker.delta("k", {1.0: 1.0, float("inf"): 2.0})
        assert reset == {1.0: 1.0, float("inf"): 2.0}


# ---------------------------------------------------------------------------
# Rules, SLO windows, reports
# ---------------------------------------------------------------------------
class TestRulesAndSlo:
    def test_rule_grades_and_abstains(self):
        rule = Rule("r", signal="x", warn=1.0, critical=5.0, series=("s",))
        assert rule.evaluate({}) is None  # absent signal: abstain
        assert rule.evaluate({"x": 0.5}).status == "ok"
        warned = rule.evaluate({"x": 2.0})
        assert (warned.status, warned.threshold) == ("warn", 1.0)
        fired = rule.evaluate({"x": 9.0})
        assert (fired.status, fired.threshold) == ("critical", 5.0)
        assert fired.evidence["series"] == ["s"]

    def test_rule_less_than_op_and_validation(self):
        floor = Rule("floor", signal="alive", warn=2.0, op="<")
        assert floor.evaluate({"alive": 3.0}).status == "ok"
        assert floor.evaluate({"alive": 1.0}).status == "warn"
        with pytest.raises(ValueError):
            Rule("bad", signal="x", warn=1.0, op=">=")
        with pytest.raises(ValueError):
            Rule("no-bounds", signal="x")

    def test_slo_window_burn_and_recovery(self):
        slo = SloWindow(
            "slo_x",
            signal="x",
            objective=0.9,
            window_s=10.0,
            warn_burn=1.0,
            critical_burn=3.0,
        )
        assert slo.evaluate(0.0) is None  # nothing observed yet
        slo.observe(1.0, good=99.0, bad=1.0)  # 1% errors, 10% budget
        assert slo.evaluate(1.0).status == "ok"
        # One storm observation dominates the window immediately.
        slo.observe(2.0, good=10.0, bad=90.0)
        fired = slo.evaluate(2.0)
        assert fired.status == "critical"
        assert fired.value > 3.0
        assert fired.evidence["bad"] == 91.0
        # The storm ages out of the window and the verdict clears.
        slo.observe(13.0, good=100.0, bad=0.0)
        assert slo.evaluate(13.0).status == "ok"

    def test_worst_and_report_rollup(self):
        assert worst([]) == "ok"
        assert worst(["ok", "warn", "ok"]) == "warn"
        assert worst(["warn", "critical"]) == "critical"
        report = HealthReport(
            ts=1.0,
            poll=3,
            status="warn",
            verdicts=[
                Verdict("a", "ok", "x"),
                Verdict("b", "warn", "y", value=2.0),
            ],
            signals={"x": 1.0},
        )
        payload = report.to_dict()
        assert payload["schema"] == "repro-health/v1"
        assert payload["counts"] == {"ok": 1, "warn": 1, "critical": 0}
        assert [v["name"] for v in payload["verdicts"]] == ["a", "b"]
        assert report.firing[0].name == "b"


# ---------------------------------------------------------------------------
# Watchtower over an in-process probe
# ---------------------------------------------------------------------------
class TestWatchtowerInProc:
    def _tower(self, tele: Telemetry, clock: _FakeClock) -> Watchtower:
        return Watchtower(
            LocalProbe(tele), events=tele.events, clock=clock
        )

    def test_healthy_polls_stay_ok(self):
        async def run():
            tele = Telemetry()
            clock = _FakeClock()
            tower = self._tower(tele, clock)
            reports = []
            for _ in range(3):
                reports.append(await tower.poll())
                clock.now += 1.0
            return reports

        reports = asyncio.run(run())
        assert all(r.status == "ok" for r in reports)
        assert all(not r.firing for r in reports)
        # A rendering exists for the CLI view.
        assert "status=OK" in format_report(reports[-1])

    def test_overflow_storm_goes_critical_with_evidence(self):
        async def run():
            tele = Telemetry()
            decided = tele.registry.counter(
                "repro_broker_decided_emissions_total", "Decided."
            )
            drops = tele.registry.counter(
                "repro_session_overflow_dropped_tuples_total",
                "Dropped.",
                ("policy",),
            )
            clock = _FakeClock()
            tower = self._tower(tele, clock)
            decided.inc(100)
            await tower.poll()  # baseline
            clock.now += 1.0
            decided.inc(100)
            drops.labels("drop_oldest").inc(50)  # 33% of emissions dropped
            storm = await tower.poll()
            clock.now += 1.0
            decided.inc(100)  # storm over: drops stop
            calm = await tower.poll()
            return storm, calm, tele.events.since(0)

        storm, calm, events = asyncio.run(run())
        assert storm.status == "critical"
        by_name = {v.name: v for v in storm.verdicts}
        fired = by_name["overflow_drops"]
        assert fired.status == "critical"
        assert fired.value == pytest.approx(1 / 3, abs=1e-3)
        assert (
            "repro_session_overflow_dropped_tuples_total"
            in fired.evidence["series"]
        )
        # The instant rule clears the poll after drops stop (the SLO
        # window legitimately keeps burning).
        assert by_name["overflow_drops"].status == "critical"
        calm_by_name = {v.name: v for v in calm.verdicts}
        assert calm_by_name["overflow_drops"].status == "ok"
        # Edge-triggered: the transition emitted exactly one anomaly
        # event, and the recovery emitted the transition back.
        anomalies = [
            e for e in events if e["kind"] == "anomaly_overflow_drops"
        ]
        assert [e["status"] for e in anomalies] == ["critical", "ok"]

    def test_own_verdict_events_are_not_evidence(self):
        async def run():
            tele = Telemetry()
            clock = _FakeClock()
            tower = self._tower(tele, clock)
            # A verdict-shaped event about worker death must not feed
            # the death window (no anomaly feedback loop).
            tele.events.emit("anomaly_worker_death_seen", status="critical")
            tele.events.emit("slo_decide_p99", status="warn")
            return await tower.poll()

        report = asyncio.run(run())
        assert report.signals["worker_deaths_recent"] == 0.0
        assert report.status == "ok"

    def test_worker_death_event_fires_and_ages_out(self):
        async def run():
            tele = Telemetry()
            # Events carry wall-clock stamps, so the fake clock must
            # start at wall time for the window arithmetic to line up.
            clock = _FakeClock(time.time())
            tower = self._tower(tele, clock)
            await tower.poll()
            tele.events.emit("worker_death", worker=1, returncode=-9)
            dead = await tower.poll()
            clock.now += 60.0  # past the 30s death window
            recovered = await tower.poll()
            return dead, recovered

        dead, recovered = asyncio.run(run())
        assert dead.status == "critical"
        fired = {v.name: v for v in dead.verdicts}["worker_death_seen"]
        assert "event:worker_death" in fired.evidence["series"]
        assert recovered.status == "ok"

    def test_scrape_failure_is_a_critical_verdict(self):
        class DeadProbe:
            async def metrics(self):
                return None

            async def events(self, since):
                return []

        async def run():
            tower = Watchtower(DeadProbe(), clock=_FakeClock())
            return await tower.poll()

        report = asyncio.run(run())
        assert report.status == "critical"
        assert report.verdicts[0].name == "scrape_failed"

    def test_queue_depth_step_scores_anomalous(self):
        async def run():
            tele = Telemetry()
            gauge = tele.registry.gauge(
                "repro_session_queue_depth_high_water", "HW.", ("app",)
            )
            clock = _FakeClock()
            tower = self._tower(tele, clock)
            gauge.labels("app0").set(4)
            for _ in range(10):  # fill the MAD history with a flat level
                await tower.poll()
                clock.now += 1.0
            flat = tower.report.signals["queue_depth_score_max"]
            gauge.labels("app0").set(400)
            spiked = await tower.poll()
            return flat, spiked

        flat, spiked = asyncio.run(run())
        assert flat == 0.0
        assert spiked.signals["queue_depth_score_max"] > 12.0
        assert {v.name: v for v in spiked.verdicts}[
            "queue_depth_anomaly"
        ].status == "critical"


# ---------------------------------------------------------------------------
# /health/report endpoint
# ---------------------------------------------------------------------------
class TestHealthEndpoint:
    def test_404_without_watchtower_and_report_with(self):
        async def run():
            tele = Telemetry()
            service = DisseminationService(telemetry=tele)
            bare = SnapshotHTTP(service, telemetry=tele)
            await bare.start()
            status_bare, _ = await _http_get(bare.port, "/health/report")
            await bare.close()

            tower = Watchtower(LocalProbe(tele), events=tele.events)
            http = SnapshotHTTP(service, telemetry=tele, watchtower=tower)
            await http.start()
            # No background poll has run: the endpoint polls on demand.
            status, body = await _http_get(http.port, "/health/report")
            await http.close()
            return status_bare, status, json.loads(body)

        status_bare, status, payload = asyncio.run(run())
        assert "404" in status_bare
        assert "200" in status
        assert payload["schema"] == "repro-health/v1"
        assert payload["status"] in ("ok", "warn", "critical")
        assert isinstance(payload["verdicts"], list)


# ---------------------------------------------------------------------------
# Cluster scrape cache + events-fold throttle
# ---------------------------------------------------------------------------
class TestClusterScrapeCache:
    def _cluster(self, ttl: float):
        from repro.service.cluster import ClusterConfig, ClusterService

        return ClusterService(
            ClusterConfig(
                workers=2, sources=("s0", "s1"), metrics_scrape_ttl_s=ttl
            ),
            telemetry=Telemetry(),
        )

    def _cache_count(self, cluster, surface: str, result: str) -> float:
        counter = cluster.telemetry.registry.get(
            "repro_cluster_scrape_cache_total"
        )
        return counter.labels(surface, result).value

    def test_metrics_bodies_cached_within_ttl(self):
        async def run():
            cluster = self._cluster(ttl=60.0)
            worker_tele = Telemetry()
            offered = worker_tele.registry.counter(
                "repro_broker_offered_tuples_total", "Tuples."
            )
            offered.inc(11)
            worker_http = SnapshotHTTP(
                DisseminationService(), telemetry=worker_tele
            )
            await worker_http.start()
            cluster._workers[0].http_port = worker_http.port
            first = await cluster.metrics_text()
            offered.inc(100)  # invisible until the TTL lapses
            second = await cluster.metrics_text()
            hits = self._cache_count(cluster, "metrics", "hit")
            await worker_http.close()
            return first, second, hits

        first, second, hits = asyncio.run(run())
        assert 'repro_broker_offered_tuples_total{worker="0"} 11' in first
        assert 'repro_broker_offered_tuples_total{worker="0"} 11' in second
        assert hits == 1.0  # worker 0 cached; dead worker 1 can't be

    def test_ttl_zero_rescrapes_every_request(self):
        async def run():
            cluster = self._cluster(ttl=0.0)
            worker_tele = Telemetry()
            offered = worker_tele.registry.counter(
                "repro_broker_offered_tuples_total", "Tuples."
            )
            offered.inc(11)
            worker_http = SnapshotHTTP(
                DisseminationService(), telemetry=worker_tele
            )
            await worker_http.start()
            cluster._workers[0].http_port = worker_http.port
            await cluster.metrics_text()
            offered.inc(100)
            second = await cluster.metrics_text()
            hits = self._cache_count(cluster, "metrics", "hit")
            await worker_http.close()
            return second, hits

        second, hits = asyncio.run(run())
        assert 'repro_broker_offered_tuples_total{worker="0"} 111' in second
        assert hits == 0.0

    def test_events_fold_throttled_within_ttl(self):
        async def run():
            cluster = self._cluster(ttl=60.0)
            worker_tele = Telemetry()
            worker_tele.events.emit("overflow_disconnect", app="app7")
            worker_http = SnapshotHTTP(
                DisseminationService(), telemetry=worker_tele
            )
            await worker_http.start()
            cluster._workers[0].http_port = worker_http.port
            await cluster.pull_events()
            folded = len(cluster.telemetry.events.since(0))
            worker_tele.events.emit("worker_thing", n=2)
            await cluster.pull_events()  # throttled: no fleet round-trip
            throttled = len(cluster.telemetry.events.since(0))
            hits = self._cache_count(cluster, "events", "hit")
            await worker_http.close()
            return folded, throttled, hits

        folded, throttled, hits = asyncio.run(run())
        assert folded == 1
        assert throttled == 1
        assert hits == 1.0


# ---------------------------------------------------------------------------
# Bounded event log overrun counter
# ---------------------------------------------------------------------------
class TestEventsDropped:
    def test_ring_eviction_counts_and_exports(self):
        tele = Telemetry(event_capacity=4)
        for i in range(7):
            tele.events.emit("tick", n=i)
        assert tele.events.dropped == 3
        assert len(tele.events) == 4
        expo = parse_exposition(tele.registry.render())
        assert expo.value("repro_events_dropped_total") == 3.0
        # Ids keep increasing across eviction; the cursor gap is the
        # reader-visible droppage signal.
        assert [e["n"] for e in tele.events.since(0)] == [3, 4, 5, 6]


# ---------------------------------------------------------------------------
# Loadgen integration: health manifest + reconciliation
# ---------------------------------------------------------------------------
class TestLoadgenHealth:
    def test_healthy_run_reports_ok_and_writes_health_json(self, tmp_path):
        from repro.service import LoadGenConfig, run_loadgen

        summary = run_loadgen(
            LoadGenConfig(
                rate=300.0,
                duration_s=1.5,
                size="tiny",
                mode="closed",
                trace_sample=4,
                watch_interval_s=0.2,
                out_dir=str(tmp_path),
            )
        )
        assert summary["clean_shutdown"], summary["errors"]
        health = summary["health"]
        assert health is not None
        # Acceptance: a healthy steady-state run produces zero
        # warn/critical verdicts.
        assert health["status"] == "ok", health
        assert health["counts"]["warn"] == 0
        assert health["counts"]["critical"] == 0
        on_disk = json.loads((tmp_path / "health.json").read_text())
        assert on_disk["schema"] == "repro-health/v1"
        assert on_disk["status"] == "ok"
        # Telemetry honesty: both decide-latency instruments agree.
        reconciliation = summary["stage_latency"].get("reconciliation")
        assert reconciliation is not None
        assert reconciliation["within_tolerance"], reconciliation

    def test_overflow_storm_run_fires_critical_overflow_verdict(self):
        from repro.service import LoadGenConfig, run_loadgen

        summary = run_loadgen(
            LoadGenConfig(
                rate=2000.0,
                duration_s=1.5,
                size="small",
                mode="open",
                queue_capacity=4,
                overflow="drop_oldest",
                consumer_delay_ms=50.0,
                trace_sample=64,
                watch_interval_s=0.2,
            )
        )
        assert summary["dropped_tuples"] > 0, summary
        health = summary["health"]
        assert health is not None
        storm = [
            v
            for v in health["verdicts"]
            if v["name"] in ("overflow_drops", "slo_overflow_drops")
            and v["status"] == "critical"
        ]
        assert storm, health["verdicts"]
        assert any(
            "repro_session_overflow_dropped_tuples_total"
            in v["evidence"]["series"]
            for v in storm
        )

    def test_no_watch_opts_out(self):
        from repro.service import LoadGenConfig, run_loadgen

        summary = run_loadgen(
            LoadGenConfig(
                rate=200.0, duration_s=1.0, size="tiny", watch=False
            )
        )
        assert summary["health"] is None

    def test_default_rules_cover_the_documented_signals(self):
        names = {rule.name for rule in default_rules()}
        assert {
            "worker_dead",
            "worker_death_seen",
            "overflow_drops",
            "backpressure_stall",
            "queue_depth_anomaly",
            "stage_p99_regression",
        } <= names


# ---------------------------------------------------------------------------
# End-to-end: real 2-worker cluster, kill a worker, watch it go critical
# ---------------------------------------------------------------------------
def _start_serve(*extra_args: str) -> tuple[subprocess.Popen, int, int]:
    proc = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.experiments",
            "serve",
            "--port",
            "0",
            "--http-port",
            "0",
            *extra_args,
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=_env(),
    )
    deadline = time.monotonic() + 60
    line = ""
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if "listening on" in line:
            break
        if proc.poll() is not None:
            raise AssertionError(f"serve exited early: {line}")
    assert ", http on " in line, f"no ready line: {line!r}"
    parts = line.strip().split(", http on ")
    port = int(parts[0].rsplit(":", 1)[1])
    http_port = int(parts[1].rsplit(":", 1)[1])
    return proc, port, http_port


class TestWatchClusterEndToEnd:
    def test_killed_worker_drives_critical_verdict_within_seconds(self):
        proc, _port, http_port = _start_serve(
            "--workers",
            "2",
            "--watch-interval",
            "0.25",
            "--metrics-scrape-ttl",
            "0.2",
        )
        try:

            async def fetch_report() -> dict | None:
                try:
                    status, body = await _http_get(
                        http_port, "/health/report"
                    )
                except OSError:
                    return None
                return json.loads(body) if "200" in status else None

            async def drive() -> tuple[dict, dict, float]:
                probe = HttpProbe("127.0.0.1", http_port)
                healthy = None
                deadline = time.monotonic() + 30
                while time.monotonic() < deadline:
                    report = await fetch_report()
                    if (
                        report is not None
                        and report["status"] == "ok"
                        and report["signals"].get("workers_alive") == 2.0
                    ):
                        healthy = report
                        break
                    await asyncio.sleep(0.25)
                assert healthy is not None, "no healthy baseline verdict"
                events = await probe.events(0)
                pids = [
                    e["pid"]
                    for e in events
                    if e.get("kind") == "worker_spawn"
                ]
                assert pids, events
                killed_at = time.monotonic()
                os.kill(pids[0], signal.SIGKILL)
                critical = None
                deadline = killed_at + 5.0
                while time.monotonic() < deadline:
                    report = await fetch_report()
                    if report is not None and report["status"] == "critical":
                        critical = report
                        break
                    await asyncio.sleep(0.2)
                elapsed = time.monotonic() - killed_at
                assert critical is not None, "no critical verdict within 5s"
                return healthy, critical, elapsed

            healthy, critical, elapsed = asyncio.run(
                asyncio.wait_for(drive(), timeout=90)
            )
            assert healthy["counts"]["critical"] == 0
            fired = {
                v["name"]: v
                for v in critical["verdicts"]
                if v["status"] == "critical"
            }
            assert "worker_dead" in fired or "worker_death_seen" in fired, (
                fired,
                elapsed,
            )
            evidence = next(iter(fired.values()))["evidence"]["series"]
            assert evidence, critical
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=10)

    def test_repro_watch_cli_reaches_healthy_verdict(self, tmp_path):
        proc, _port, http_port = _start_serve("--watch-interval", "0")
        try:
            out_file = tmp_path / "health.json"
            watch = subprocess.run(
                [
                    sys.executable,
                    "-m",
                    "repro.experiments",
                    "watch",
                    "--connect",
                    f"127.0.0.1:{http_port}",
                    "--polls",
                    "3",
                    "--interval",
                    "0.3",
                    "--json",
                    "--out",
                    str(out_file),
                    "--expect",
                    "ok",
                ],
                capture_output=True,
                text=True,
                env=_env(),
                timeout=60,
            )
            assert watch.returncode == 0, watch.stdout + watch.stderr
            lines = [
                json.loads(line)
                for line in watch.stdout.splitlines()
                if line.strip().startswith("{")
            ]
            assert len(lines) == 3
            assert all(r["schema"] == "repro-health/v1" for r in lines)
            final = json.loads(out_file.read_text())
            assert final["status"] == "ok"
        finally:
            if proc.poll() is None:
                proc.send_signal(signal.SIGTERM)
                try:
                    proc.wait(timeout=15)
                except subprocess.TimeoutExpired:
                    proc.kill()


# ---------------------------------------------------------------------------
# Volume-weighted decide SLO + remediation hook
# ---------------------------------------------------------------------------
class TestDecideSloWeighting:
    def _tower(self, tele):
        return Watchtower(
            LocalProbe(tele), events=tele.events, clock=_FakeClock()
        )

    def test_budget_burns_by_decide_volume_not_by_polls(self):
        recorded = []

        class StubSlo:
            name = "slo_decide_p99"
            signal = "decide_p99_ms"

            def observe(self, now, good, bad):
                recorded.append((good, bad))

            def evaluate(self, now):
                return None

        tower = self._tower(Telemetry())
        tower.slos = [StubSlo()]
        tower.decide_p99_target_ms = 100.0
        # A violating poll that decided 1000 tuples burns 1000 units...
        tower._observe_slos(
            {"decide_p99_ms": 250.0, "decided_delta": 1000.0}, 0.0
        )
        # ...an idle violating poll burns the one-unit floor...
        tower._observe_slos({"decide_p99_ms": 250.0}, 1.0)
        # ...and a healthy busy poll credits its full volume.
        tower._observe_slos(
            {"decide_p99_ms": 50.0, "decided_delta": 500.0}, 2.0
        )
        assert recorded == [(0.0, 1000.0), (0.0, 1.0), (500.0, 0.0)]

    def test_decided_delta_signal_derived_from_counter(self):
        async def run():
            tele = Telemetry()
            decided = tele.registry.counter(
                "repro_broker_decided_emissions_total", "Decided."
            )
            tower = self._tower(tele)
            decided.inc(100)
            await tower.poll()  # baseline
            tower.clock.now += 1.0
            decided.inc(40)
            report = await tower.poll()
            return report

        report = asyncio.run(run())
        assert report.signals["decided_delta"] == 40.0


class TestTransitionHook:
    def test_hook_sees_each_edge_exactly_once(self):
        async def run():
            tele = Telemetry()
            decided = tele.registry.counter(
                "repro_broker_decided_emissions_total", "Decided."
            )
            drops = tele.registry.counter(
                "repro_session_overflow_dropped_tuples_total",
                "Dropped.",
                ("policy",),
            )
            clock = _FakeClock()
            tower = Watchtower(
                LocalProbe(tele), events=tele.events, clock=clock
            )
            captured = []
            tower.on_transitions = captured.extend
            decided.inc(100)
            await tower.poll()
            clock.now += 1.0
            decided.inc(100)
            drops.labels("drop_oldest").inc(50)
            await tower.poll()  # edge: ok -> critical
            clock.now += 1.0
            decided.inc(100)
            await tower.poll()  # edge: critical -> ok
            clock.now += 1.0
            decided.inc(100)
            await tower.poll()  # steady: no edge
            return captured

        captured = asyncio.run(run())
        edges = [
            (v.name, prev, v.status)
            for v, prev in captured
            if v.name == "overflow_drops"
        ]
        assert edges == [
            ("overflow_drops", "ok", "critical"),
            ("overflow_drops", "critical", "ok"),
        ]
