"""Cross-process source sharding: determinism, supervision, backpressure.

Three contracts:

* **partition invariance** (hypothesis, in-process): sources are
  independent, so *any* assignment of sources to broker instances —
  driven through the same interleaved offer/churn script — delivers
  byte-identical per-subscriber streams to the single-broker run;
* **drain + respawn**: killing a worker process mid-stream respawns it,
  re-registers its sources, re-subscribes its sessions, and the
  router-side stream keeps delivering (a gap, never a teardown);
* **router backpressure isolation**: a stalled subscriber on one worker
  blocks only that worker's sources' producers; the other worker's
  producers keep their pace.
"""

from __future__ import annotations

import asyncio

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.tuples import StreamTuple
from repro.runtime.partition import HashRing
from repro.runtime.tasks import EngineConfig
from repro.service import DisseminationService, ServiceConfig
from repro.service.cluster import ClusterConfig, ClusterService
from repro.sources import random_walk_trace

SOURCES = ("part-a", "part-b", "part-c")
SPECS = (
    "DC1(temp, 1.5, 0.75)",
    "DC1(temp, 3.0, 1.5)",
    "DC2(temp, 0.8, 0.4)",
)


def _two_sources_on_distinct_shards(workers: int = 2) -> tuple[str, str]:
    """Source names the cluster's ring places on different workers."""
    ring = HashRing(range(workers))
    by_shard: dict[int, str] = {}
    index = 0
    while len(by_shard) < 2:
        name = f"shardsrc{index}"
        by_shard.setdefault(int(ring.owner(name)), name)
        index += 1
    return tuple(by_shard[k] for k in sorted(by_shard))[:2]


# ---------------------------------------------------------------------------
# Partition invariance (in-process property)
# ---------------------------------------------------------------------------
def _broker(algorithm: str, sources: list[str]) -> DisseminationService:
    service = DisseminationService(
        ServiceConfig(
            engine=EngineConfig(algorithm=algorithm),
            batch_max_items=1,
            batch_max_delay_ms=1e9,
            queue_capacity=10_000,
        )
    )
    for name in sources:
        service.add_source(name)
    return service


async def _run_partitioned(
    algorithm: str, assignment: tuple[int, ...], trace
) -> dict[str, list[int]]:
    """Replay the fixed offer/churn script over a source partitioning.

    ``assignment[i]`` names the broker instance serving ``SOURCES[i]``;
    the single-broker baseline is ``assignment == (0, 0, 0)``.
    """
    groups: dict[int, list[str]] = {}
    for source, group in zip(SOURCES, assignment):
        groups.setdefault(group, []).append(source)
    services = {
        group: _broker(algorithm, sources) for group, sources in groups.items()
    }
    owner = {
        source: services[group]
        for group, sources in groups.items()
        for source in sources
    }
    delivered: dict[str, list[int]] = {}
    consumers: list[asyncio.Task] = []

    async def drain(app: str, session) -> None:
        async for batch in session.batches():
            delivered[app].extend(item.seq for item in batch.items)

    async def attach(app: str, source: str, spec: str) -> None:
        session = await owner[source].subscribe(app, source, spec)
        delivered[app] = []
        consumers.append(asyncio.create_task(drain(app, session)))

    for source in SOURCES:
        await attach(f"{source}.x", source, SPECS[0])
        await attach(f"{source}.y", source, SPECS[1])
    for index, item in enumerate(trace):
        # Fixed churn script, interleaved at the same offer positions in
        # every partitioning (each event targets one source's broker).
        if index == 25:
            await owner[SOURCES[0]].re_filter(f"{SOURCES[0]}.x", SPECS[2])
        if index == 40:
            await owner[SOURCES[1]].unsubscribe(f"{SOURCES[1]}.y")
        if index == 55:
            await attach(f"{SOURCES[2]}.late", SOURCES[2], SPECS[2])
        source = SOURCES[index % len(SOURCES)]
        await owner[source].offer(source, item)
    for service in services.values():
        await service.close()
    await asyncio.gather(*consumers)
    return delivered


@settings(max_examples=12, deadline=None)
@given(
    assignment=st.tuples(
        st.integers(min_value=0, max_value=2),
        st.integers(min_value=0, max_value=2),
        st.integers(min_value=0, max_value=2),
    ),
    algorithm=st.sampled_from(["region", "per_candidate_set"]),
)
def test_any_source_partitioning_delivers_identical_streams(
    assignment, algorithm
):
    trace = random_walk_trace(n=90, seed=11, attribute="temp")

    async def run():
        baseline = await _run_partitioned(algorithm, (0, 0, 0), trace)
        partitioned = await _run_partitioned(algorithm, assignment, trace)
        return baseline, partitioned

    baseline, partitioned = asyncio.run(run())
    assert partitioned == baseline


async def _run_migrated(
    algorithm: str, moves: frozenset[int], trace
) -> dict[str, list[int]]:
    """Replay the fixed script, live-migrating ``SOURCES[0]`` mid-stream.

    At every offer index in ``moves`` the source is exported from its
    current broker and imported into a brand-new one (subscriptions
    re-attached first, in their recorded order), so two moves exercise
    the chained export of a replayed journal.  Per-app streams
    accumulate across brokers; transparency means the concatenation
    equals the unmigrated baseline byte for byte.
    """
    services = [_broker(algorithm, list(SOURCES))]
    owner: dict[str, DisseminationService] = {
        source: services[0] for source in SOURCES
    }
    delivered: dict[str, list[int]] = {}
    consumers: list[asyncio.Task] = []

    async def drain(app: str, session) -> None:
        async for batch in session.batches():
            delivered[app].extend(item.seq for item in batch.items)

    async def attach(app: str, source: str, spec: str) -> None:
        session = await owner[source].subscribe(app, source, spec)
        delivered.setdefault(app, [])
        consumers.append(asyncio.create_task(drain(app, session)))

    async def migrate() -> None:
        moving = SOURCES[0]
        state = await owner[moving].export_source(moving)
        target = _broker(algorithm, [moving])
        services.append(target)
        owner[moving] = target
        # Subscriptions re-attach before the import, in export order,
        # with whatever spec each app had at the hand-off (a re-filtered
        # app migrates with its current filter).
        for app, spec, _node in state["subscriptions"]:
            await attach(app, moving, spec)
        await target.import_source(moving, state)

    for source in SOURCES:
        await attach(f"{source}.x", source, SPECS[0])
        await attach(f"{source}.y", source, SPECS[1])
    for index, item in enumerate(trace):
        if index in moves:
            await migrate()
        if index == 25:
            await owner[SOURCES[0]].re_filter(f"{SOURCES[0]}.x", SPECS[2])
        if index == 40:
            await owner[SOURCES[1]].unsubscribe(f"{SOURCES[1]}.y")
        if index == 55:
            await attach(f"{SOURCES[2]}.late", SOURCES[2], SPECS[2])
        source = SOURCES[index % len(SOURCES)]
        await owner[source].offer(source, item)
    for service in services:
        await service.close()
    await asyncio.gather(*consumers)
    return delivered


@settings(max_examples=12, deadline=None)
@given(
    move_at=st.integers(min_value=0, max_value=89),
    second_move=st.integers(min_value=0, max_value=89),
    algorithm=st.sampled_from(["region", "per_candidate_set"]),
)
def test_live_migration_at_any_point_is_stream_transparent(
    move_at, second_move, algorithm
):
    trace = random_walk_trace(n=90, seed=11, attribute="temp")

    async def run():
        baseline = await _run_partitioned(algorithm, (0, 0, 0), trace)
        migrated = await _run_migrated(
            algorithm, frozenset({move_at, second_move}), trace
        )
        return baseline, migrated

    baseline, migrated = asyncio.run(run())
    assert migrated == baseline


# ---------------------------------------------------------------------------
# Real worker fleet (subprocesses)
# ---------------------------------------------------------------------------
def _tuples(start: int, count: int, value: float = 0.0) -> list[StreamTuple]:
    return [
        StreamTuple(
            seq=seq,
            timestamp=float(seq) * 10.0,
            values={"value": float(seq) + value},
        )
        for seq in range(start, start + count)
    ]


#: A chatty spec: decides (nearly) every offered tuple immediately.
_CHATTY = "DC1(value, 0.0001, 0.00005)"


def test_worker_crash_drains_respawns_and_stream_continues():
    source_a, source_b = _two_sources_on_distinct_shards()

    async def run():
        cluster = ClusterService(
            ClusterConfig(
                workers=2,
                sources=(source_a, source_b),
                batch_max_items=1,
                health_interval_s=0.25,
            )
        )
        await cluster.start()
        try:
            session = await cluster.subscribe(f"{source_a}.app", source_a, _CHATTY)
            received: list[int] = []

            async def consume():
                async for batch in session.batches():
                    received.extend(item.seq for item in batch.items)

            consumer = asyncio.create_task(consume())
            for item in _tuples(0, 10):
                await cluster.offer(source_a, item)
            for _ in range(200):
                if len(received) >= 5:
                    break
                await asyncio.sleep(0.05)
            assert received, "no pre-crash deliveries"
            pre_crash = len(received)

            victim = cluster._workers[cluster.shard_of(source_a)]
            victim.process.kill()
            # The supervisor must notice, respawn and re-subscribe.
            for _ in range(600):
                if victim.respawns >= 1 and victim.ready.is_set():
                    break
                await asyncio.sleep(0.05)
            assert victim.respawns >= 1 and victim.ready.is_set(), (
                victim.respawns,
                victim.ready.is_set(),
            )
            # The other worker never blinked.
            assert await cluster.offer(source_b, _tuples(0, 1)[0]) >= 0
            # Post-respawn offers flow to the SAME session object.
            for item in _tuples(100, 10):
                await cluster.offer(source_a, item)
            for _ in range(600):
                if any(seq >= 100 for seq in received):
                    break
                await asyncio.sleep(0.05)
            assert any(seq >= 100 for seq in received), received
            assert not session.closed
            final = await cluster.snapshot()
            assert final["workers"][victim.index]["respawns"] >= 1
            await cluster.close()
            await asyncio.wait_for(consumer, timeout=30)
            return pre_crash, received

        except BaseException:
            await cluster.close()
            raise

    pre_crash, received = asyncio.run(run())
    assert len(received) >= pre_crash


def test_slow_worker_throttles_only_its_sources_producers():
    source_a, source_b = _two_sources_on_distinct_shards()

    async def run():
        cluster = ClusterService(
            ClusterConfig(
                workers=2,
                sources=(source_a, source_b),
                queue_capacity=2,
                batch_max_items=1,
                overflow="block",
            )
        )
        await cluster.start()
        try:
            # Subscribe on A's worker and never consume: its bounded
            # queue fills, the worker's block policy withholds ingest
            # acks, and A's producer must stall.
            session = await cluster.subscribe(f"{source_a}.lag", source_a, _CHATTY)
            progress = {"a": 0}

            async def produce_a():
                for item in _tuples(0, 30):
                    await cluster.offer(source_a, item)
                    progress["a"] += 1

            stalled = asyncio.create_task(produce_a())
            # B's producer shares the router but not the worker: all 30
            # offers must complete while A is wedged.
            for item in _tuples(0, 30, value=0.5):
                await asyncio.wait_for(
                    cluster.offer(source_b, item), timeout=30
                )
            await asyncio.sleep(0.3)
            assert not stalled.done(), "producer A never hit backpressure"
            assert progress["a"] < 30
            # Unstick: dismiss the laggard's subscription; the worker's
            # queue drains and the blocked offer completes.
            session.end_local("router_closed")
            await asyncio.wait_for(stalled, timeout=60)
            assert progress["a"] == 30
            # A locally-closed session must still unsubscribe on the
            # worker — otherwise the app name stays poisoned there and
            # re-subscribing it is refused until a respawn.
            await cluster.unsubscribe(f"{source_a}.lag")
            fresh = await cluster.subscribe(
                f"{source_a}.lag", source_a, _CHATTY
            )
            assert not fresh.closed
        finally:
            await cluster.close()

    asyncio.run(run())

# ---------------------------------------------------------------------------
# Live migration / warm standby / elasticity (real subprocess fleets)
# ---------------------------------------------------------------------------
async def _baseline_stream(offers: list[StreamTuple], spec: str) -> list[int]:
    """What one app subscribed with ``spec`` sees from an unmigrated,
    uncrashed single broker fed ``offers`` — the byte-identity oracle."""
    service = _broker("region", ["oracle"])
    session = await service.subscribe("oracle.app", "oracle", spec)
    delivered: list[int] = []

    async def drain():
        async for batch in session.batches():
            delivered.extend(item.seq for item in batch.items)

    consumer = asyncio.create_task(drain())
    for item in offers:
        await service.offer("oracle", item)
    await service.close()
    await consumer
    return delivered


async def _settled(received: list[int], *, quiet_s: float = 0.4) -> None:
    """Wait until the received stream stops growing for ``quiet_s``."""
    last = -1
    stable_since = None
    for _ in range(400):
        if len(received) != last:
            last = len(received)
            stable_since = asyncio.get_running_loop().time()
        elif asyncio.get_running_loop().time() - stable_since >= quiet_s:
            return
        await asyncio.sleep(0.05)


def test_live_migration_moves_source_without_subscriber_teardown():
    source_a, source_b = _two_sources_on_distinct_shards()
    offers = _tuples(0, 30)

    async def run():
        expected = await _baseline_stream(offers, _CHATTY)
        cluster = ClusterService(
            ClusterConfig(
                workers=2,
                sources=(source_a, source_b),
                batch_max_items=1,
                health_interval_s=0.25,
            )
        )
        await cluster.start()
        try:
            session = await cluster.subscribe(
                f"{source_a}.app", source_a, _CHATTY
            )
            received: list[int] = []

            async def consume():
                async for batch in session.batches():
                    received.extend(item.seq for item in batch.items)

            consumer = asyncio.create_task(consume())
            for item in offers[:15]:
                await cluster.offer(source_a, item)
            old_shard = cluster.shard_of(source_a)
            target = cluster.shard_of(source_b)
            result = await cluster.migrate_source(source_a, target)
            assert result["moved"] and result["exact"], result
            assert cluster.shard_of(source_a) == target != old_shard
            # The session survived the move and keeps delivering.
            assert not session.closed
            for item in offers[15:]:
                await cluster.offer(source_a, item)
            await cluster.close()
            await asyncio.wait_for(consumer, timeout=30)
            kinds = [e["event"] for e in cluster.telemetry.events.tail(200)] \
                if cluster.telemetry else []
            return received, expected, kinds
        except BaseException:
            await cluster.close()
            raise

    received, expected, kinds = asyncio.run(run())
    # Exact journal replay: the migrated stream is byte-identical to the
    # unmigrated oracle — no gap, no replay, no teardown.
    assert received == expected
    if kinds:
        assert "migration_start" in kinds and "migration_complete" in kinds


def test_standby_adoption_splices_stream_with_zero_gap():
    offers = _tuples(0, 30)

    async def run():
        expected = await _baseline_stream(offers, _CHATTY)
        cluster = ClusterService(
            ClusterConfig(
                workers=1,
                standby=1,
                sources=("solo",),
                batch_max_items=1,
                health_interval_s=0.25,
            )
        )
        await cluster.start()
        try:
            session = await cluster.subscribe("solo.app", "solo", _CHATTY)
            received: list[int] = []

            async def consume():
                async for batch in session.batches():
                    received.extend(item.seq for item in batch.items)

            consumer = asyncio.create_task(consume())
            for item in offers[:15]:
                await cluster.offer("solo", item)
            await _settled(received)
            primary = cluster._primary(0)
            standby = cluster._standby_for(0)
            assert standby is not None, "standby never armed"
            assert "solo" not in standby.stale_sources
            old_pid = primary.process.pid
            standby_pid = standby.process.pid
            primary.process.kill()
            # Healed = the slot runs a *different* process and is ready
            # again (ready alone is not enough: it only drops once the
            # monitor sights the death).
            for _ in range(600):
                process = primary.process
                if (
                    process is not None
                    and process.pid != old_pid
                    and primary.ready.is_set()
                ):
                    break
                await asyncio.sleep(0.05)
            assert primary.ready.is_set(), "slot never healed"
            assert primary.process.pid == standby_pid
            # Healed by adoption, not respawn: the standby's process was
            # promoted into the primary slot.
            assert primary.respawns == 0
            for item in offers[15:]:
                await cluster.offer("solo", item)
            assert not session.closed
            await cluster.close()
            await asyncio.wait_for(consumer, timeout=30)
            return received, expected
        except BaseException:
            await cluster.close()
            raise

    received, expected = asyncio.run(run())
    # The splice drops exactly the already-delivered prefix: the stream
    # across the failover equals the uncrashed oracle — zero gap, zero
    # duplicates, zero teardown.
    assert received == expected


def test_add_and_remove_worker_rebalance_via_live_migration():
    async def run():
        cluster = ClusterService(
            ClusterConfig(
                workers=2,
                sources=SOURCES,
                batch_max_items=1,
                health_interval_s=0.25,
            )
        )
        await cluster.start()
        try:
            session = await cluster.subscribe(
                f"{SOURCES[0]}.app", SOURCES[0], _CHATTY
            )
            received: list[int] = []

            async def consume():
                async for batch in session.batches():
                    received.extend(item.seq for item in batch.items)

            consumer = asyncio.create_task(consume())
            for item in _tuples(0, 10):
                await cluster.offer(SOURCES[0], item)
            index = await cluster.add_worker()
            assert index == 2
            ring_owner = {s: int(cluster._ring.owner(s)) for s in SOURCES}
            # Every source sits where the grown ring says it should.
            assert {s: cluster.shard_of(s) for s in SOURCES} == ring_owner
            for item in _tuples(10, 10):
                await cluster.offer(SOURCES[0], item)
            removed = await cluster.remove_worker()
            assert removed == index
            assert all(cluster.shard_of(s) in (0, 1) for s in SOURCES)
            for item in _tuples(20, 10):
                await cluster.offer(SOURCES[0], item)
            assert not session.closed
            await cluster.close()
            await asyncio.wait_for(consumer, timeout=30)
            return received
        except BaseException:
            await cluster.close()
            raise

    received = asyncio.run(run())
    # Streams survived two rebalances; the chatty spec decides nearly
    # every offer, so deliveries kept flowing across both moves.
    assert received and received == sorted(received)
