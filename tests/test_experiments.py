"""Tests for the experiment harness, configs and CLI."""

import pytest

from repro.experiments import EXPERIMENTS, TABLE_4_1_GROUPS
from repro.experiments.cli import main
from repro.experiments.configs import dc_specs_from_statistics, table_5_2_groups
from repro.experiments.harness import (
    STANDARD_VARIANTS,
    Variant,
    run_group,
    run_variant,
    variant_from_name,
)
from repro.filters.spec import parse_filter
from repro.sources import namos_trace

#: Every table and figure of the evaluation chapters, per DESIGN.md.
EXPECTED_IDS = {
    "table_4_1", "table_4_2",
    "fig_4_2", "fig_4_3", "fig_4_4", "fig_4_5", "fig_4_6", "fig_4_7", "fig_4_8",
    "fig_4_9", "fig_4_10", "fig_4_11", "fig_4_12", "fig_4_13", "fig_4_14",
    "fig_4_15", "fig_4_16", "fig_4_17", "fig_4_18", "fig_4_19", "fig_4_20",
    "fig_4_21", "fig_4_22", "fig_4_23", "fig_4_24",
    "table_5_1", "table_5_2", "table_5_3",
    "fig_5_2", "fig_5_3", "fig_5_4_scenario", "fig_5_5_scenario",
}


class TestRegistry:
    def test_every_paper_artifact_has_an_experiment(self):
        assert set(EXPERIMENTS.ids()) == EXPECTED_IDS

    def test_unknown_experiment(self):
        with pytest.raises(KeyError, match="available"):
            EXPERIMENTS.run("fig_99_9")


class TestVariantParsing:
    @pytest.mark.parametrize(
        "name,algorithm,cuts,output",
        [
            ("SI", "self_interested", False, "region"),
            ("RG", "region", False, "region"),
            ("RG+C", "region", True, "region"),
            ("PS", "per_candidate_set", False, "region"),
            ("PS+C", "per_candidate_set", True, "region"),
            ("PS(Pcs)", "per_candidate_set", False, "pcs"),
            ("PS(B)-200", "per_candidate_set", False, "batched"),
        ],
    )
    def test_notation(self, name, algorithm, cuts, output):
        variant = variant_from_name(name)
        assert variant.algorithm == algorithm
        assert variant.cuts is cuts
        assert variant.output == output

    def test_batch_size_parsed(self):
        assert variant_from_name("PS(B)-400").batch_size == 400

    def test_unknown_variant(self):
        with pytest.raises(ValueError):
            variant_from_name("XX")

    def test_bad_strategy(self):
        with pytest.raises(ValueError):
            Variant("x", "region", output="weird").to_engine_config()


class TestConfigs:
    def test_table_4_1_specs_parse(self):
        for specs in TABLE_4_1_GROUPS.values():
            assert len(specs) == 3
            for spec in specs:
                parse_filter(spec)

    def test_recipe_respects_axiom(self):
        trace = namos_trace(n=400, seed=7)
        specs = dc_specs_from_statistics(trace, "tmpr4", [1.0, 2.0, 2.7])
        for spec in specs:
            flt = parse_filter(spec)
            assert flt.slack <= flt.delta / 2 * (1 + 1e-4)

    def test_table_5_2_has_ten_groups(self):
        trace = namos_trace(n=400, seed=9)
        groups = table_5_2_groups(trace)
        assert sorted(groups) == list(range(1, 11))
        for specs in groups.values():
            assert len(specs) == 3
            for spec in specs:
                parse_filter(spec)


class TestHarness:
    def test_run_group_covers_variants(self):
        trace = namos_trace(n=300, seed=7)
        run = run_group("g", TABLE_4_1_GROUPS["DC_Tmpr"], trace, STANDARD_VARIANTS)
        assert set(run.results) == set(STANDARD_VARIANTS)
        assert run.output_ratio("RG") <= 1.0

    def test_run_variant_with_custom_constraint(self):
        trace = namos_trace(n=300, seed=7)
        result = run_variant(
            TABLE_4_1_GROUPS["DC_Tmpr"], trace, "RG+C", constraint_ms=50.0
        )
        assert result.regions_emitted > 0


class TestSmallExperiments:
    """Smoke-run the cheap experiments end to end."""

    @pytest.mark.parametrize("experiment_id", ["table_4_1", "table_4_2", "table_5_1"])
    def test_static_tables(self, experiment_id):
        report = EXPERIMENTS.run(experiment_id, n_tuples=300, repeats=1, seed=7)
        assert report.text
        assert report.experiment_id == experiment_id

    def test_fig_4_2_claims(self):
        report = EXPERIMENTS.run("fig_4_2", n_tuples=800, repeats=1, seed=7)
        for group, ratios in report.data.items():
            for variant in ("RG", "RG+C", "PS", "PS+C"):
                assert ratios[variant] <= ratios["SI"], (group, variant)

    def test_fig_4_15_monotone_trend(self):
        report = EXPERIMENTS.run("fig_4_15", n_tuples=800, repeats=1, seed=7)
        ratios = [report.data[f] for f in sorted(report.data)]
        # More slack -> more sharing: the ends of the sweep must order.
        assert ratios[-1] < ratios[0]

    def test_fig_5_2_majority_below_unity(self):
        report = EXPERIMENTS.run("fig_5_2", n_tuples=1200, repeats=1, seed=9)
        below = sum(1 for ratio in report.data.values() if ratio < 1.0)
        assert below >= 8

    def test_scenario_savings_positive(self):
        report = EXPERIMENTS.run("fig_5_4_scenario", n_tuples=1200, repeats=1, seed=23)
        assert report.data["saving"] > 0


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        printed = capsys.readouterr().out.split()
        assert set(printed) == EXPECTED_IDS

    def test_run(self, capsys):
        assert main(["run", "table_4_2"]) == 0
        assert "Filter type notations" in capsys.readouterr().out

    def test_run_with_knobs(self, capsys):
        assert main(["run", "fig_4_2", "--tuples", "300", "--seed", "3"]) == 0
        assert "O/I" in capsys.readouterr().out
