"""Unit tests for the tuple and trace model."""

import pytest

from repro.core.tuples import StreamTuple, Trace, src_statistics


class TestStreamTuple:
    def test_value_access(self):
        t = StreamTuple(seq=0, timestamp=0.0, values={"temp": 21.5})
        assert t.value("temp") == 21.5

    def test_missing_attribute_raises(self):
        t = StreamTuple(seq=0, timestamp=0.0, values={"temp": 21.5})
        with pytest.raises(KeyError):
            t.value("humidity")

    def test_identity_is_seq(self):
        a = StreamTuple(seq=3, timestamp=0.0, values={"x": 1.0})
        b = StreamTuple(seq=3, timestamp=99.0, values={"x": 2.0})
        c = StreamTuple(seq=4, timestamp=0.0, values={"x": 1.0})
        assert a == b
        assert a != c
        assert hash(a) == hash(b)

    def test_equality_against_other_types(self):
        t = StreamTuple(seq=0, timestamp=0.0, values={})
        assert t != 0
        assert t != "tuple"

    def test_usable_in_sets(self):
        tuples = {StreamTuple(seq=i % 3, timestamp=float(i), values={}) for i in range(9)}
        assert len(tuples) == 3

    def test_values_are_copied(self):
        source = {"x": 1.0}
        t = StreamTuple(seq=0, timestamp=0.0, values=source)
        source["x"] = 2.0
        assert t.value("x") == 1.0


class TestTrace:
    def test_from_values_spacing(self):
        trace = Trace.from_values([1.0, 2.0, 3.0], attribute="v", interval_ms=10)
        assert [t.timestamp for t in trace] == [0.0, 10.0, 20.0]
        assert [t.seq for t in trace] == [0, 1, 2]

    def test_from_values_custom_start(self):
        trace = Trace.from_values([1.0, 2.0], attribute="v", interval_ms=5, start_ms=100)
        assert [t.timestamp for t in trace] == [100.0, 105.0]

    def test_from_columns(self):
        trace = Trace.from_columns({"a": [1, 2], "b": [3, 4]})
        assert trace[0].value("a") == 1
        assert trace[1].value("b") == 4
        assert trace.attributes == ["a", "b"]

    def test_from_columns_mismatched_lengths(self):
        with pytest.raises(ValueError, match="mismatched"):
            Trace.from_columns({"a": [1, 2], "b": [3]})

    def test_timestamps_must_increase(self):
        tuples = [
            StreamTuple(seq=0, timestamp=10.0, values={}),
            StreamTuple(seq=1, timestamp=10.0, values={}),
        ]
        with pytest.raises(ValueError, match="strictly increasing"):
            Trace(tuples)

    def test_column(self):
        trace = Trace.from_values([5.0, 6.0, 7.0], attribute="v")
        assert trace.column("v") == [5.0, 6.0, 7.0]

    def test_slice(self):
        trace = Trace.from_values(list(range(10)), attribute="v")
        sub = trace.slice(2, 5)
        assert len(sub) == 3
        assert sub.column("v") == [2, 3, 4]

    def test_getitem_slice_returns_trace(self):
        trace = Trace.from_values(list(range(5)), attribute="v")
        assert isinstance(trace[1:3], Trace)
        assert len(trace[1:3]) == 2

    def test_empty_trace(self):
        trace = Trace([])
        assert len(trace) == 0
        assert trace.attributes == []


class TestSrcStatistics:
    def test_constant_series(self):
        trace = Trace.from_values([5.0, 5.0, 5.0], attribute="v")
        assert src_statistics(trace, "v") == 0.0

    def test_known_value(self):
        trace = Trace.from_values([0.0, 1.0, 3.0, 2.0], attribute="v")
        # |1| + |2| + |1| over three gaps
        assert src_statistics(trace, "v") == pytest.approx(4.0 / 3.0)

    def test_single_tuple_raises(self):
        trace = Trace.from_values([1.0], attribute="v")
        with pytest.raises(ValueError, match="at least two"):
            src_statistics(trace, "v")
