"""Unit tests for the discrete-event simulator."""

import pytest

from repro.net.sim import Simulator


class TestSimulator:
    def test_events_run_in_time_order(self):
        sim = Simulator()
        log = []
        sim.schedule(30, lambda: log.append("c"))
        sim.schedule(10, lambda: log.append("a"))
        sim.schedule(20, lambda: log.append("b"))
        sim.run()
        assert log == ["a", "b", "c"]
        assert sim.now == 30

    def test_ties_run_in_schedule_order(self):
        sim = Simulator()
        log = []
        sim.schedule(5, lambda: log.append(1))
        sim.schedule(5, lambda: log.append(2))
        sim.run()
        assert log == [1, 2]

    def test_events_scheduled_while_running(self):
        sim = Simulator()
        log = []

        def first():
            log.append("first")
            sim.schedule(5, lambda: log.append("second"))

        sim.schedule(10, first)
        sim.run()
        assert log == ["first", "second"]
        assert sim.now == 15

    def test_run_until(self):
        sim = Simulator()
        log = []
        sim.schedule(10, lambda: log.append("early"))
        sim.schedule(100, lambda: log.append("late"))
        sim.run(until_ms=50)
        assert log == ["early"]
        assert sim.now == 50
        assert sim.pending() == 1
        sim.run()
        assert log == ["early", "late"]

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            sim.schedule(-1, lambda: None)

    def test_schedule_in_past_rejected(self):
        sim = Simulator(start_ms=100)
        with pytest.raises(ValueError):
            sim.schedule_at(50, lambda: None)

    def test_custom_start(self):
        sim = Simulator(start_ms=1000)
        fired = []
        sim.schedule(5, lambda: fired.append(sim.now))
        sim.run()
        assert fired == [1005]
