"""Unit tests for candidate sets and time covers."""

import pytest

from repro.core.candidates import CandidateSet, TimeCover
from tests.conftest import make_tuples


class TestTimeCover:
    def test_intersects_overlapping(self):
        assert TimeCover(0, 10).intersects(TimeCover(5, 15))
        assert TimeCover(5, 15).intersects(TimeCover(0, 10))

    def test_intersects_touching(self):
        assert TimeCover(0, 10).intersects(TimeCover(10, 20))

    def test_disjoint(self):
        assert not TimeCover(0, 10).intersects(TimeCover(10.5, 20))

    def test_containment(self):
        assert TimeCover(0, 100).intersects(TimeCover(40, 50))

    def test_union(self):
        assert TimeCover(0, 10).union(TimeCover(5, 20)) == TimeCover(0, 20)

    def test_span(self):
        assert TimeCover(5, 25).span == 20


class TestCandidateSet:
    def test_add_and_membership(self):
        items = make_tuples([1.0, 2.0])
        cs = CandidateSet("f")
        cs.add(items[0])
        assert items[0] in cs
        assert items[1] not in cs
        assert len(cs) == 1

    def test_add_is_idempotent(self):
        item = make_tuples([1.0])[0]
        cs = CandidateSet("f")
        cs.add(item)
        cs.add(item)
        assert len(cs) == 1

    def test_tuples_in_arrival_order(self):
        items = make_tuples([3.0, 1.0, 2.0])
        cs = CandidateSet("f")
        for item in items:
            cs.add(item)
        assert cs.tuples == items

    def test_remove(self):
        items = make_tuples([1.0, 2.0])
        cs = CandidateSet("f")
        for item in items:
            cs.add(item)
        cs.remove(items[0])
        assert items[0] not in cs
        assert cs.tuples == [items[1]]

    def test_remove_absent_is_noop(self):
        items = make_tuples([1.0, 2.0])
        cs = CandidateSet("f")
        cs.add(items[0])
        cs.remove(items[1])
        assert len(cs) == 1

    def test_mutation_after_close_raises(self):
        item = make_tuples([1.0])[0]
        cs = CandidateSet("f")
        cs.add(item)
        cs.close()
        with pytest.raises(RuntimeError, match="closed"):
            cs.add(item)
        with pytest.raises(RuntimeError, match="closed"):
            cs.remove(item)

    def test_close_cut_flag(self):
        cs = CandidateSet("f")
        cs.add(make_tuples([1.0])[0])
        cs.close(cut=True)
        assert cs.cut

    def test_time_cover_empty(self):
        assert CandidateSet("f").time_cover is None

    def test_time_cover(self):
        items = make_tuples([1.0, 2.0, 3.0], interval_ms=10)
        cs = CandidateSet("f")
        for item in items:
            cs.add(item)
        cover = cs.time_cover
        assert cover == TimeCover(0.0, 20.0)

    def test_time_cover_shrinks_on_remove(self):
        items = make_tuples([1.0, 2.0, 3.0], interval_ms=10)
        cs = CandidateSet("f")
        for item in items:
            cs.add(item)
        cs.remove(items[2])
        assert cs.time_cover == TimeCover(0.0, 10.0)

    def test_connected(self):
        items = make_tuples([1.0, 2.0, 3.0, 4.0], interval_ms=10)
        a = CandidateSet("f")
        a.add(items[0])
        a.add(items[1])
        b = CandidateSet("g")
        b.add(items[1])
        b.add(items[2])
        c = CandidateSet("h")
        c.add(items[3])
        assert a.connected(b)
        assert not a.connected(c)

    def test_connected_with_empty_is_false(self):
        a = CandidateSet("f")
        a.add(make_tuples([1.0])[0])
        assert not a.connected(CandidateSet("g"))

    def test_default_degree(self):
        assert CandidateSet("f").degree == 1

    def test_eligible_defaults_to_all(self):
        items = make_tuples([1.0, 2.0])
        cs = CandidateSet("f")
        for item in items:
            cs.add(item)
        assert cs.eligible_tuples == items
        assert cs.is_eligible(items[0])

    def test_restrict_eligible(self):
        items = make_tuples([1.0, 2.0, 3.0])
        cs = CandidateSet("f")
        for item in items:
            cs.add(item)
        cs.restrict_eligible([items[1]])
        assert cs.eligible_tuples == [items[1]]
        assert not cs.is_eligible(items[0])
        assert cs.is_eligible(items[1])

    def test_restrict_eligible_requires_membership(self):
        items = make_tuples([1.0, 2.0])
        cs = CandidateSet("f")
        cs.add(items[0])
        with pytest.raises(ValueError, match="not members"):
            cs.restrict_eligible([items[1]])

    def test_is_eligible_for_non_member(self):
        items = make_tuples([1.0, 2.0])
        cs = CandidateSet("f")
        cs.add(items[0])
        assert not cs.is_eligible(items[1])

    def test_unique_ids(self):
        assert CandidateSet("f").set_id != CandidateSet("f").set_id

    def test_reference_tracking(self):
        items = make_tuples([1.0])
        cs = CandidateSet("f")
        cs.add(items[0])
        cs.reference = items[0]
        assert cs.reference == items[0]


class TestIncrementalCaches:
    """The cover and mask caches must stay exact through churny mutation."""

    def test_cover_object_is_cached_until_bounds_change(self):
        items = make_tuples([1.0, 2.0, 3.0], interval_ms=10)
        cs = CandidateSet("f")
        cs.add(items[0])
        first = cs.time_cover
        assert cs.time_cover is first  # no recompute, no realloc
        cs.add(items[1])  # widens max
        widened = cs.time_cover
        assert widened == TimeCover(0.0, 10.0)
        assert widened is not first

    def test_cover_recomputes_after_interior_then_boundary_removes(self):
        items = make_tuples([1.0, 2.0, 3.0, 4.0], interval_ms=10)
        cs = CandidateSet("f")
        for item in items:
            cs.add(item)
        cs.remove(items[1])  # interior: bounds unchanged
        assert cs.time_cover == TimeCover(0.0, 30.0)
        cs.remove(items[0])  # min boundary: lazy recompute
        assert cs.time_cover == TimeCover(20.0, 30.0)
        cs.remove(items[3])  # max boundary
        assert cs.time_cover == TimeCover(20.0, 20.0)

    def test_remove_then_readd_boundary(self):
        items = make_tuples([1.0, 2.0], interval_ms=10)
        cs = CandidateSet("f")
        for item in items:
            cs.add(item)
        cs.remove(items[1])
        cs.add(items[1])
        assert cs.time_cover == TimeCover(0.0, 10.0)

    def test_member_mask_tracks_add_and_remove(self):
        from repro.core.candidates import TupleInterner

        items = make_tuples([1.0, 2.0, 3.0], interval_ms=10)
        interner = TupleInterner()
        cs = CandidateSet("f")
        cs.add(items[0])
        mask = cs.member_mask(interner)
        assert mask.bit_count() == 1
        cs.add(items[1])  # incremental OR
        assert cs.member_mask(interner).bit_count() == 2
        cs.remove(items[0])  # incremental clear
        mask = cs.member_mask(interner)
        assert mask.bit_count() == 1
        assert interner.seq_at(mask.bit_length() - 1) == items[1].seq

    def test_member_mask_rebuilds_for_new_interner(self):
        from repro.core.candidates import TupleInterner

        items = make_tuples([1.0, 2.0])
        cs = CandidateSet("f")
        for item in items:
            cs.add(item)
        first = TupleInterner()
        second = TupleInterner()
        assert cs.member_mask(first).bit_count() == 2
        assert cs.member_mask(second).bit_count() == 2
        # And switching back still answers correctly.
        assert cs.member_mask(first).bit_count() == 2

    def test_interner_bit_of(self):
        from repro.core.candidates import TupleInterner

        interner = TupleInterner()
        assert interner.bit_of(7) is None
        bit = interner.intern(7)
        assert interner.bit_of(7) == bit
        interner.release([7])
        assert interner.bit_of(7) is None
