"""Unit tests for the independent quality validator."""

from repro.core.engine import GroupAwareEngine, SelfInterestedEngine
from repro.core.tuples import Trace
from repro.filters.delta import DeltaCompressionFilter
from repro.filters.validate import replay_candidate_sets, validate_outputs
from tests.conftest import paper_group, random_walk_values


def _paper_sets(trace, name):
    params = {"A": (50, 10), "B": (40, 5), "C": (80, 25)}[name]
    return replay_candidate_sets(
        lambda: DeltaCompressionFilter(name, "temp", *params), trace
    )


class TestValidator:
    def test_group_aware_outputs_validate(self, paper_trace):
        result = GroupAwareEngine(paper_group()).run(paper_trace)
        for name in ("A", "B", "C"):
            sets = _paper_sets(paper_trace, name)
            report = validate_outputs(sets, result.outputs_for(name))
            assert report.ok
            assert report.satisfied_sets == report.candidate_sets

    def test_self_interested_outputs_validate(self, paper_trace):
        result = SelfInterestedEngine(paper_group()).run(paper_trace)
        for name in ("A", "B", "C"):
            sets = _paper_sets(paper_trace, name)
            assert validate_outputs(sets, result.outputs_for(name)).ok

    def test_detects_missing_output(self, paper_trace):
        sets = _paper_sets(paper_trace, "A")
        result = GroupAwareEngine(paper_group()).run(paper_trace)
        outputs = result.outputs_for("A")[:-1]  # drop the last delivery
        report = validate_outputs(sets, outputs)
        assert not report.complete
        assert len(report.unsatisfied_sets) == 1

    def test_detects_foreign_tuple(self, paper_trace):
        sets = _paper_sets(paper_trace, "A")
        foreign = paper_trace[1]  # value 35, not in any candidate set
        result = GroupAwareEngine(paper_group()).run(paper_trace)
        report = validate_outputs(sets, result.outputs_for("A") + [foreign])
        assert not report.granular
        assert report.foreign_tuples == [1]

    def test_empty_outputs_with_no_sets(self):
        report = validate_outputs([], [])
        assert report.ok
        assert report.candidate_sets == 0

    def test_all_variants_validate_on_random_walks(self):
        for seed in range(3):
            values = random_walk_values(300, seed=seed)
            trace = Trace.from_values(values, attribute="temp", interval_ms=10)
            params = [("A", 2.0, 1.0), ("B", 3.0, 1.5), ("C", 4.4, 2.0)]

            def group():
                return [
                    DeltaCompressionFilter(name, "temp", delta, slack)
                    for name, delta, slack in params
                ]

            for algorithm in ("region", "per_candidate_set"):
                result = GroupAwareEngine(group(), algorithm=algorithm).run(trace)
                for name, delta, slack in params:
                    sets = replay_candidate_sets(
                        lambda name=name, delta=delta, slack=slack: (
                            DeltaCompressionFilter(name, "temp", delta, slack)
                        ),
                        trace,
                    )
                    report = validate_outputs(sets, result.outputs_for(name))
                    assert report.ok, (algorithm, name, seed)
