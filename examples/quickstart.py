#!/usr/bin/env python3
"""Quickstart: group-aware stream filtering in thirty lines.

Reproduces the paper's running example (sections 2.1.1-2.1.3 and
Figures 2.5/2.8): three applications share a temperature source, each
with a (slack, delta) delta-compression requirement.  Self-interested
filtering sends 6 distinct tuples; group-aware filtering satisfies all
three applications with 3.

Run:  python examples/quickstart.py
"""

from repro import (
    DeltaCompressionFilter,
    GroupAwareEngine,
    SelfInterestedEngine,
    Trace,
)

# The nine-tuple temperature sequence from section 2.1.1 (plus the 112
# the worked example appends to close the last candidate sets).
VALUES = [0, 35, 29, 45, 50, 59, 80, 97, 100, 112]


def make_group():
    """Three (slack, delta) DC filters: A=(10,50), B=(5,40), C=(25,80)."""
    return [
        DeltaCompressionFilter("A", "temp", delta=50, slack=10),
        DeltaCompressionFilter("B", "temp", delta=40, slack=5),
        DeltaCompressionFilter("C", "temp", delta=80, slack=25),
    ]


def main() -> None:
    trace = Trace.from_values(VALUES, attribute="temp", interval_ms=10)

    self_interested = SelfInterestedEngine(make_group()).run(trace)
    print("Self-interested filtering (each filter picks its references):")
    for name in ("A", "B", "C"):
        chosen = [t.value("temp") for t in self_interested.outputs_for(name)]
        print(f"  {name} receives {chosen}")
    print(f"  distinct tuples multicast: {self_interested.output_count}")

    group_aware = GroupAwareEngine(make_group(), algorithm="region").run(trace)
    print("\nGroup-aware filtering (region-based greedy, Figure 2.8):")
    for name in ("A", "B", "C"):
        chosen = [t.value("temp") for t in group_aware.outputs_for(name)]
        print(f"  {name} receives {chosen}")
    print(f"  distinct tuples multicast: {group_aware.output_count}")

    saved = self_interested.output_count - group_aware.output_count
    print(
        f"\nGroup-awareness saved {saved} tuples "
        f"({saved / self_interested.output_count:.0%} of the bandwidth) "
        "while meeting every application's slack."
    )


if __name__ == "__main__":
    main()
