#!/usr/bin/env python3
"""Multi-source study: how data characteristics drive bandwidth savings.

Reproduces the section 4.7.4 investigation on three real-world-shaped
sources (cow orientation, volcano seismic, fire HRR(Q)) plus the NAMOS
buoy trace, running the full algorithm matrix (RG, RG+C, PS, PS+C vs SI)
on each and reporting O/I ratios, CPU cost, latency and the
timely-cut/latency trade-off.

Run:  python examples/multi_source_study.py
"""

from repro import src_statistics
from repro.experiments.harness import STANDARD_VARIANTS, run_variant
from repro.metrics.cpu import cpu_ms_per_tuple
from repro.metrics.latency import mean_latency_ms
from repro.sources import cow_trace, fire_trace, namos_trace, volcano_trace

N_TUPLES = 3000


def recipe_specs(trace, attribute):
    """The paper's parameter recipe: deltas at 1x/2x/2.5x srcStatistics,
    slack at 50% of delta (section 4.3)."""
    statistic = src_statistics(trace, attribute)
    specs = []
    for multiplier in (1.0, 2.0, 2.5):
        delta = float(f"{multiplier * statistic:.6g}")
        slack = min(float(f"{delta / 2:.6g}"), delta / 2)
        specs.append(f"DC1({attribute}, {delta:.10g}, {slack:.10g})")
    return specs


def main() -> None:
    sources = {
        "NAMOS buoy (tmpr4)": (namos_trace(n=N_TUPLES, seed=7), "tmpr4"),
        "cow orientation": (cow_trace(n=N_TUPLES, seed=111), "E-orient"),
        "volcano seismic": (volcano_trace(n=N_TUPLES, seed=213), "seis"),
        "fire HRR(Q)": (fire_trace(n=N_TUPLES, seed=317), "HRR"),
    }

    print(f"{'source':22} {'variant':7} {'O/I':>7} {'GA/SI':>7} {'CPU ms/t':>9} {'lat ms':>8}")
    for source_name, (trace, attribute) in sources.items():
        specs = recipe_specs(trace, attribute)
        results = {
            variant: run_variant(specs, trace, variant)
            for variant in STANDARD_VARIANTS
        }
        si_output = results["SI"].output_count
        for variant in STANDARD_VARIANTS:
            result = results[variant]
            relative = result.output_count / si_output if si_output else float("nan")
            print(
                f"{source_name:22} {variant:7} {result.oi_ratio:7.4f} "
                f"{relative:7.3f} {cpu_ms_per_tuple(result):9.4f} "
                f"{mean_latency_ms(result):8.1f}"
            )
        print()

    print(
        "Reading the table: smoother update patterns (fire) leave more\n"
        "room for candidate-set overlap, so group-aware filtering saves\n"
        "more there than on bursty sources (cow) - the ordering the\n"
        "paper's Figure 4.20 reports.  Cuts (+C) trade a little bandwidth\n"
        "for bounded latency."
    )


if __name__ == "__main__":
    main()
