#!/usr/bin/env python3
"""Multi-modal sensing: cheap sensors index an expensive imager.

The scenario of section 5.5.2 / Figure 5.5: a surveillance site bundles
low-cost motion sensors with a high-resolution camera.  Several
surveillance applications filter the motion stream at different
granularities; the union of the filters' outputs is the *index* that
selects which images are worth transmitting.  The smaller the index,
the fewer 4 KB images cross the wireless uplink - so group-aware
filtering on the cheap stream directly saves expensive image bandwidth.

Run:  python examples/multimodal_sensing.py
"""

from repro import GroupAwareEngine, SelfInterestedEngine, parse_group, src_statistics
from repro.sources import cow_trace

IMAGE_DEBOUNCE_MS = 10.0  # snapshot-on-demand: at most one capture per frame time
IMAGE_BYTES = 4096
TUPLE_BYTES = 64


def images_triggered(result) -> int:
    """Each selected tuple triggers a capture, debounced per camera.

    This is the robot-exploration variant of the scenario: "the indexing
    data may trigger cameras to take pictures" (section 5.5.2), so fewer
    index tuples directly means fewer captures and transmissions.
    """
    count = 0
    last_capture = float("-inf")
    for emission in sorted(result.emissions, key=lambda e: e.item.timestamp):
        if emission.item.timestamp - last_capture >= IMAGE_DEBOUNCE_MS:
            count += 1
            last_capture = emission.item.timestamp
    return count


def main() -> None:
    # A bursty orientation/motion stream stands in for the motion sensors.
    trace = cow_trace(n=3000, seed=11)
    statistic = src_statistics(trace, "E-orient")

    def make_group():
        specs = []
        for multiplier in (2.0, 3.0, 4.0):
            delta = multiplier * statistic
            specs.append(f"DC1(E-orient, {delta:.6g}, {delta / 2:.6g})")
        return parse_group(specs, prefix="surveillance-")

    group_aware = GroupAwareEngine(make_group(), algorithm="region").run(trace)
    self_interested = SelfInterestedEngine(make_group()).run(trace)

    print(f"{'filtering':18} {'index tuples':>13} {'images':>7} {'bytes on uplink':>16}")
    totals = {}
    for label, result in (
        ("group-aware", group_aware),
        ("self-interested", self_interested),
    ):
        images = images_triggered(result)
        total = result.output_count * TUPLE_BYTES + images * IMAGE_BYTES
        totals[label] = total
        print(f"{label:18} {result.output_count:13d} {images:7d} {total:16d}")

    print(
        f"\nGroup-aware indexing cut uplink traffic by "
        f"{1 - totals['group-aware'] / totals['self-interested']:.1%}; every "
        "application still receives a motion update within its granularity slack."
    )


if __name__ == "__main__":
    main()
