#!/usr/bin/env python3
"""Adaptive group-awareness: the paper's future-work directions, running.

Sections 4.8 and 6.2 sketch three production concerns this example
demonstrates on live streams:

1. **Selectivity monitoring** - spot "bad" filters that select most of
   the source anyway, so coordination cannot pay for itself;
2. **Regrouping** - isolate those filters and split groups whose
   attribute sets are disjoint (their candidate sets can never overlap);
3. **Dynamic group-awareness** - disable coordination when the measured
   benefit drops below threshold, and probe to re-enable it.

Run:  python examples/adaptive_filtering.py
"""

from repro import DeltaCompressionFilter, SelfInterestedEngine
from repro.adaptive import (
    AdaptiveController,
    isolate_greedy_filters,
    partition_by_attribute,
    selectivity_from_result,
)
from repro.sources import namos_trace, step_trace


def monitoring_and_regrouping() -> None:
    trace = namos_trace(n=2000, seed=7)
    filters = [
        # A near-pass-through filter: delta far below the source noise.
        DeltaCompressionFilter("firehose", "tmpr4", 0.004, 0.001),
        DeltaCompressionFilter("thermal-1", "tmpr4", 0.0620, 0.0310),
        DeltaCompressionFilter("thermal-2", "tmpr4", 0.0310, 0.0155),
        DeltaCompressionFilter("bio-1", "fluoro", 0.0468, 0.0234),
    ]
    result = SelfInterestedEngine(filters).run(trace)
    selectivity = selectivity_from_result(result)

    print("Per-filter selectivity (fraction of the source each one needs):")
    for name, fraction in sorted(selectivity.items()):
        print(f"  {name:12} {fraction:.2f}")

    coordinated, isolated = isolate_greedy_filters(filters, selectivity, threshold=0.8)
    print(f"\nIsolated as 'bad' (coordination cannot help): "
          f"{[f.name for f in isolated] or 'none'}")

    groups = partition_by_attribute(coordinated)
    print("Attribute-disjoint coordination groups:")
    for group in groups:
        print(f"  {[f.name for f in group]}")


def dynamic_group_awareness() -> None:
    def factory():
        return [
            DeltaCompressionFilter("A", "value", 10.0, 0.1),
            DeltaCompressionFilter("B", "value", 20.0, 0.1),
        ]

    # A staircase source: abrupt jumps, near-zero slack tolerance -
    # candidate sets are singletons, so coordination cannot save a tuple.
    trace = step_trace(n=900, step_every=20, step_height=10.0)
    controller = AdaptiveController(factory, window_size=150)
    outcome = controller.run(trace)

    print("\nDynamic group-awareness on a no-benefit workload:")
    for window in outcome.windows:
        print(
            f"  window {window.window_index}: mode={window.mode:16} "
            f"output={window.output_count:3d} "
            f"benefit={window.benefit:+.2%}"
        )
    print(
        f"Controller switched modes {outcome.mode_switches} time(s); "
        "it stops paying coordination CPU once the benefit vanishes."
    )


if __name__ == "__main__":
    monitoring_and_regrouping()
    dynamic_group_awareness()
