#!/usr/bin/env python3
"""Emergency response: chlorine monitoring over a wireless mesh overlay.

The scenario of section 5.5.1 / Figure 5.4: a train carrying chlorine
derails; wireless routers on fire trucks, police cars and ambulances
form a mesh overlay.  A chlorine-concentration source (continuous-leak
Gaussian plume with meandering wind) feeds three command-and-control
applications with different granularity needs:

* fire prediction      - updates every ~5% of peak concentration;
* responder safety     - every ~8%;
* situation assessment - every ~12%.

The script deploys group-aware filters at the source node, disseminates
over Scribe-style tuple-level multicast, and compares link bandwidth and
end-to-end latency against self-interested filtering.

Run:  python examples/emergency_response.py
"""

from repro.net import LinkModel, OverlayNetwork, ScribeMulticast, StreamingSystem
from repro.sources import chlorine_trace

MESH_NODES = [
    "engine-7",
    "ladder-2",
    "police-11",
    "ambulance-3",
    "command-post",
    "hazmat-1",
    "relay-balloon",
]


def build_system() -> StreamingSystem:
    """A 7-node mesh with 1 Mbps effective links, as in the Emulab setup."""
    overlay = OverlayNetwork(MESH_NODES, LinkModel(bandwidth_mbps=1.0, latency_ms=5.0))
    multicast = ScribeMulticast(overlay, software_overhead_ms=50.0)
    return StreamingSystem(overlay, multicast, tuple_size_bytes=64)


def subscribe_applications(system: StreamingSystem, peak_ppm: float) -> None:
    granularity = {
        "fire-prediction": ("command-post", 0.05),
        "responder-safety": ("hazmat-1", 0.08),
        "situation-assessment": ("police-11", 0.12),
    }
    for app_name, (node, fraction) in granularity.items():
        delta = fraction * peak_ppm
        spec = f"DC1(cl_near, {delta:.6g}, {delta / 2:.6g})"
        system.subscribe(app_name, node, "chlorine", spec)


def main() -> None:
    trace = chlorine_trace(n=3000, seed=23)
    peak = max(trace.column("cl_near"))
    print(f"Replaying {len(trace)} chlorine readings (peak ~{peak:.0f} ppm-scale).\n")

    results = {}
    for label, algorithm in (
        ("group-aware (per-candidate-set)", "per_candidate_set"),
        ("self-interested", "self_interested"),
    ):
        system = build_system()
        system.add_source("chlorine", "engine-7")
        subscribe_applications(system, peak)
        results[label] = system.disseminate("chlorine", trace, algorithm=algorithm)

    print(f"{'dissemination':34} {'tuples':>7} {'link msgs':>10} {'link bytes':>11} {'e2e ms':>8}")
    for label, result in results.items():
        engine = result.engine_result
        print(
            f"{label:34} {engine.output_count:7d} "
            f"{result.accounting.total_messages:10d} "
            f"{result.accounting.total_bytes:11d} "
            f"{result.mean_end_to_end_ms():8.1f}"
        )

    ga = results["group-aware (per-candidate-set)"]
    si = results["self-interested"]
    saving = 1.0 - ga.total_link_bytes / si.total_link_bytes
    print(
        f"\nGroup-aware filtering saved {saving:.1%} of the mesh bandwidth "
        "beyond self-interested filtering (the paper's drill measured ~15%)."
    )
    print("\nBusiest links under group-aware dissemination:")
    for (sender, receiver), usage in ga.accounting.busiest_links(3):
        print(f"  {sender} -> {receiver}: {usage.messages} msgs, {usage.bytes} bytes")


if __name__ == "__main__":
    main()
