"""Live dissemination: two subscribers, one re-filters mid-stream.

Demonstrates the asyncio broker (`repro.service`): a volcano seismic
feed streams into a `DisseminationService`; two applications consume
decided tuples concurrently from their bounded session queues; halfway
through, the second application tightens its filter at runtime (the
broker cuts the engine over and regroups), and the delivery rate change
is visible in its per-epoch counts.

Run with::

    PYTHONPATH=src python examples/live_dissemination.py
"""

from __future__ import annotations

import asyncio

from repro.runtime.tasks import EngineConfig
from repro.service import DisseminationService, ServiceConfig
from repro.sources import volcano_trace


async def consume(name: str, session, log: list[str]) -> int:
    """Drain one session's queue; a real app would act on each batch."""
    total = 0
    async for batch in session.batches():
        total += len(batch)
        if len(log) < 8:  # keep the demo output short
            first = batch.items[0]
            log.append(
                f"  {name}: batch of {len(batch)} "
                f"(first seq={first.seq}, t={first.timestamp:.0f} ms)"
            )
    return total


async def main() -> None:
    trace = volcano_trace(n=2000, seed=13)
    service = DisseminationService(
        ServiceConfig(
            engine=EngineConfig(algorithm="region"),
            batch_max_items=4,
            queue_capacity=64,
            overflow="block",
        )
    )
    service.add_source("volcano")

    # Loose delta filter: only large seismic excursions pass.
    loose = await service.subscribe("quake-alarm", "volcano", "DC1(seis, 0.004, 0.002)")
    # Medium filter for a trend dashboard.
    dash = await service.subscribe("dashboard", "volcano", "DC1(seis, 0.002, 0.001)")

    log: list[str] = []
    consumers = [
        asyncio.create_task(consume("quake-alarm", loose, log)),
        asyncio.create_task(consume("dashboard", dash, log)),
    ]

    half = len(trace) // 2
    for item in trace[:half]:
        await service.offer("volcano", item)

    mid_snapshot = service.snapshot()
    print(f"first half : {mid_snapshot.decided_emissions} emissions decided")

    # The dashboard operator zooms in: re-filter at runtime.  The broker
    # flushes the open candidate state, regroups, and keeps serving.
    await dash.re_filter("DC1(seis, 0.0005, 0.00025)")
    print("dashboard re-filtered to DC1(seis, 0.0005, 0.00025)")

    for item in trace[half:]:
        await service.offer("volcano", item)

    await service.close()
    totals = await asyncio.gather(*consumers)

    print("\nsample deliveries:")
    for line in log:
        print(line)

    snapshot = service.snapshot()
    print(f"\nfinal      : {snapshot.decided_emissions} emissions decided, "
          f"p99 decide latency {snapshot.decide_p99_ms:.0f} ms")
    for name, total in zip(("quake-alarm", "dashboard"), totals):
        print(f"  {name:<12} received {total} tuples")
    epochs = service.results("volcano")
    dashboard_per_epoch = [len(e.decisions.get("dashboard", [])) for e in epochs]
    print(f"  dashboard decisions per epoch (loose -> tight): {dashboard_per_epoch}")


if __name__ == "__main__":
    asyncio.run(main())
