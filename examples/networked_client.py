"""End-to-end networked dissemination: server, producer, two QoS tiers.

Starts a :class:`~repro.transport.server.GatewayServer` (plus the HTTP
snapshot endpoint) on ephemeral localhost ports, then drives it the way
a real deployment would — every interaction crosses a socket:

* an **ingest producer** connection replays a seeded volcano trace;
* an **operator console** subscriber with a relaxed QoS profile
  (best-effort latency, priority 0): broker-default batching, blocking
  backpressure;
* a **seismic alarm** subscriber with a strict profile (80 ms latency
  tolerance, priority 2): the QoS mapping caps its micro-batch delay at
  20 ms, quadruples its queue bound, and prefers fresh data
  (``drop_oldest``) over stalling the source.

Run it::

    PYTHONPATH=src python examples/networked_client.py
"""

from __future__ import annotations

import asyncio
import json

from repro.runtime.tasks import EngineConfig
from repro.service import DisseminationService, ServiceConfig
from repro.sources import CATALOG
from repro.transport import GatewayClient, GatewayServer, SnapshotHTTP

SOURCE = "volcano"
SPEC_CONSOLE = "DC1(seis, 0.008, 0.004)"  # coarse: big changes only
SPEC_ALARM = "DC1(seis, 0.002, 0.001)"  # fine: small tremors too


async def consume(name: str, subscription, log: list[str]) -> int:
    total = 0
    async for batch in subscription.batches():
        total += len(batch)
        log.append(
            f"  [{name}] batch of {len(batch)} "
            f"(staged {batch.first_staged_ms:.0f} ms, "
            f"flushed {batch.flushed_ms:.0f} ms, "
            f"+{batch.batching_delay_ms:.0f} ms batching)"
        )
    return total


async def main() -> None:
    # --- server side: broker + gateway + snapshot endpoint ------------
    service = DisseminationService(
        ServiceConfig(engine=EngineConfig(algorithm="region"))
    )
    service.add_source(SOURCE)
    gateway = GatewayServer(service)
    await gateway.start()
    http = SnapshotHTTP(service)
    await http.start()
    print(f"gateway on 127.0.0.1:{gateway.port}, http on :{http.port}")

    # --- two subscribers with different QoS profiles ------------------
    subscribers = await GatewayClient.connect("127.0.0.1", gateway.port)
    console = await subscribers.subscribe(
        "console",
        SOURCE,
        SPEC_CONSOLE,
        qos={"priority": 0},  # best effort: broker defaults apply
    )
    alarm = await subscribers.subscribe(
        "alarm",
        SOURCE,
        SPEC_ALARM,
        qos={"latency_tolerance_ms": 80.0, "priority": 2},
    )
    log: list[str] = []
    console_task = asyncio.create_task(consume("console", console, log))
    alarm_task = asyncio.create_task(consume("alarm  ", alarm, log))

    # --- a separate producer connection replays the trace -------------
    producer = await GatewayClient.connect("127.0.0.1", gateway.port)
    trace = CATALOG.make(SOURCE, n=400, seed=7)
    for item in trace:
        await producer.ingest(SOURCE, item)
    await producer.tick(trace[-1].timestamp + 1000.0)  # flush latency-due

    # --- scrape the HTTP endpoint mid-run (async: an in-loop blocking
    # client such as urllib would deadlock against our own server) -----
    reader, writer = await asyncio.open_connection("127.0.0.1", http.port)
    writer.write(b"GET /snapshot HTTP/1.1\r\nHost: localhost\r\n\r\n")
    await writer.drain()
    raw = await reader.read()
    writer.close()
    snapshot = json.loads(raw.partition(b"\r\n\r\n")[2])
    print(
        f"/snapshot: offered={snapshot['offered']} "
        f"decided={snapshot['decided_emissions']} "
        f"p50={snapshot['decide_p50_ms']:.1f} ms "
        f"p99={snapshot['decide_p99_ms']:.1f} ms"
    )
    for session in snapshot["sessions"]:
        print(
            f"  session {session['app_name']}: policy={session['policy']} "
            f"queue={session['queue_depth']}/{session['queue_capacity']} "
            f"delivered={session['delivered_tuples']} "
            f"dropped={session['dropped_tuples']}"
        )

    # --- graceful teardown: flush, close, report ----------------------
    await producer.close()
    terminal = await gateway.shutdown()
    console_total, alarm_total = await asyncio.gather(console_task, alarm_task)
    await subscribers.close()
    await http.close()

    for line in log[:6]:
        print(line)
    if len(log) > 6:
        print(f"  ... {len(log) - 6} more batches")
    print(
        f"console received {console_total} tuples "
        f"(coarse filter, default QoS); "
        f"alarm received {alarm_total} tuples "
        f"(fine filter, 80 ms tolerance -> 20 ms batching cap)"
    )
    print(
        f"terminal snapshot: offered={terminal['offered']} "
        f"delivered={terminal['delivered_tuples']} "
        f"dropped={terminal['dropped_tuples']}"
    )


if __name__ == "__main__":
    asyncio.run(main())
